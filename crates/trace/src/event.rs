//! Typed simulation events and their labels.
//!
//! Every event carries a timestamp plus an [`EventKind`] with the fields
//! that matter for that kind.  Three derived views exist:
//!
//! * a canonical byte encoding folded into the [`TraceDigest`](crate::TraceDigest)
//!   (`fold` — one tag byte, then fixed-width little-endian fields),
//! * a JSONL rendering with the hierarchical labels spelled out
//!   (`to_jsonl`), and
//! * a compact ns-2-flavoured line (`to_line`) for eyeballing and diffing.
//!
//! Tag bytes and field order are part of the golden-digest contract:
//! changing them invalidates the fixtures under `tests/golden/` and must
//! be done deliberately.

use crate::digest::Fnv64;
use energy::{EnergyLevel, RadioMode};
use geo::GridCoord;
use radio::{FrameKind, NodeId, PageSignal};
use sim_engine::SimTime;
use std::fmt::Write as _;

/// Which layer of the stack an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Discrete-event scheduler.
    Sched,
    /// CSMA/CA MAC.
    Mac,
    /// Transceiver power state.
    Radio,
    /// Battery / energy model.
    Energy,
    /// Remote-activated-switch paging channel.
    Ras,
    /// Routing / gateway control plane.
    Route,
    /// Application (CBR) layer.
    App,
    /// Injected adversity (fault layer).
    Fault,
}

impl Layer {
    pub fn name(self) -> &'static str {
        match self {
            Layer::Sched => "sched",
            Layer::Mac => "mac",
            Layer::Radio => "radio",
            Layer::Energy => "energy",
            Layer::Ras => "ras",
            Layer::Route => "route",
            Layer::App => "app",
            Layer::Fault => "fault",
        }
    }
}

/// What kind of adversity a [`EventKind::FaultInjected`] event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A correctly received data frame was destroyed by the fault channel.
    FrameLoss,
    /// A RAS page failed to reach an addressed host.
    PageLoss,
    /// The host crashed (went silent without retiring).
    Crash,
    /// A crashed host rebooted and rejoined with fresh protocol state.
    Rejoin,
    /// A sudden battery drain event hit the host.
    Drain,
}

impl FaultKind {
    /// Stable one-byte tag (part of the digest contract).
    pub fn tag(self) -> u8 {
        match self {
            FaultKind::FrameLoss => 0,
            FaultKind::PageLoss => 1,
            FaultKind::Crash => 2,
            FaultKind::Rejoin => 3,
            FaultKind::Drain => 4,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FrameLoss => "frame_loss",
            FaultKind::PageLoss => "page_loss",
            FaultKind::Crash => "crash",
            FaultKind::Rejoin => "rejoin",
            FaultKind::Drain => "drain",
        }
    }
}

/// The hierarchical label set of one event: `protocol` (run-wide), then
/// `layer`, then the optional `node` and `cell` the event is about.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Labels<'a> {
    pub protocol: &'a str,
    pub layer: Layer,
    pub node: Option<NodeId>,
    pub cell: Option<GridCoord>,
}

/// One traced event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    pub t: SimTime,
    pub kind: EventKind,
}

/// Every event kind the simulator emits.  `dst: None` means broadcast.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A frame was put on the air.
    MacTx {
        node: NodeId,
        dst: Option<NodeId>,
        bytes: u32,
    },
    /// A frame was received successfully.
    MacRx { node: NodeId, from: NodeId, bytes: u32 },
    /// A reception was destroyed by a collision.
    MacCollision { node: NodeId, from: NodeId },
    /// A unicast missed its ACK and is being retried (`attempt` ≥ 1).
    MacRetry { node: NodeId, attempt: u32 },
    /// A unicast was dropped after exhausting its retransmission budget.
    MacDrop { node: NodeId, dst: Option<NodeId> },
    /// The transceiver changed power state.
    RadioMode {
        node: NodeId,
        from: RadioMode,
        to: RadioMode,
    },
    /// The battery crossed a level-class boundary (Eq. 1 classes).
    BatteryLevel {
        node: NodeId,
        from: EnergyLevel,
        to: EnergyLevel,
    },
    /// `node` became the gateway of `cell`.
    GatewayElect { node: NodeId, cell: GridCoord },
    /// `node` stopped being the gateway of `cell`.
    GatewayRetire { node: NodeId, cell: GridCoord },
    /// A RAS page was transmitted by `by`.
    RasPage { by: NodeId, signal: PageSignal },
    /// The application at `src` emitted packet (flow, seq).
    PacketSent { src: NodeId, flow: u32, seq: u64 },
    /// A router relayed packet (flow, seq) toward its destination.
    PacketForwarded { node: NodeId, flow: u32, seq: u64 },
    /// The application at `node` received packet (flow, seq).
    PacketDelivered { node: NodeId, flow: u32, seq: u64 },
    /// The host's battery ran out.
    NodeDeath { node: NodeId },
    /// The host crossed a grid boundary.
    CellChange {
        node: NodeId,
        from: GridCoord,
        to: GridCoord,
    },
    /// The fault layer injected adversity at `node`.
    FaultInjected { node: NodeId, fault: FaultKind },
    /// A buffered-forward page toward `target` is being retried
    /// (`attempt` ≥ 1) after the previous wake window elapsed unanswered.
    PageRetry {
        node: NodeId,
        target: NodeId,
        attempt: u32,
    },
    /// `node` observed its grid gateway-less past the handoff grace timer
    /// and is forcing re-election of `cell`.
    GatewayHandoffTimeout { node: NodeId, cell: GridCoord },
}

#[inline]
fn mode_tag(m: RadioMode) -> u8 {
    match m {
        RadioMode::Tx => 0,
        RadioMode::Rx => 1,
        RadioMode::Idle => 2,
        RadioMode::Sleep => 3,
        RadioMode::Off => 4,
    }
}

#[inline]
fn level_tag(l: EnergyLevel) -> u8 {
    match l {
        EnergyLevel::Lower => 0,
        EnergyLevel::Boundary => 1,
        EnergyLevel::Upper => 2,
    }
}

#[inline]
fn fold_opt_node(h: &mut Fnv64, n: Option<NodeId>) {
    // u32::MAX is an impossible node id (hosts are numbered from 0 and a
    // world never holds 4 billion of them): safe broadcast sentinel.
    h.write_u32(n.map(|n| n.0).unwrap_or(u32::MAX));
}

#[inline]
fn fold_cell(h: &mut Fnv64, c: GridCoord) {
    h.write_i32(c.x);
    h.write_i32(c.y);
}

impl EventKind {
    /// Stable one-byte tag of this kind (part of the digest contract).
    pub fn tag(&self) -> u8 {
        match self {
            EventKind::MacTx { .. } => 1,
            EventKind::MacRx { .. } => 2,
            EventKind::MacCollision { .. } => 3,
            EventKind::MacRetry { .. } => 4,
            EventKind::MacDrop { .. } => 5,
            EventKind::RadioMode { .. } => 6,
            EventKind::BatteryLevel { .. } => 7,
            EventKind::GatewayElect { .. } => 8,
            EventKind::GatewayRetire { .. } => 9,
            EventKind::RasPage { .. } => 10,
            EventKind::PacketSent { .. } => 11,
            EventKind::PacketForwarded { .. } => 12,
            EventKind::PacketDelivered { .. } => 13,
            EventKind::NodeDeath { .. } => 14,
            EventKind::CellChange { .. } => 15,
            EventKind::FaultInjected { .. } => 16,
            EventKind::PageRetry { .. } => 17,
            EventKind::GatewayHandoffTimeout { .. } => 18,
        }
    }

    /// Short kind name (used in JSONL and for per-kind counting).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MacTx { .. } => "mac_tx",
            EventKind::MacRx { .. } => "mac_rx",
            EventKind::MacCollision { .. } => "mac_collision",
            EventKind::MacRetry { .. } => "mac_retry",
            EventKind::MacDrop { .. } => "mac_drop",
            EventKind::RadioMode { .. } => "radio_mode",
            EventKind::BatteryLevel { .. } => "battery_level",
            EventKind::GatewayElect { .. } => "gateway_elect",
            EventKind::GatewayRetire { .. } => "gateway_retire",
            EventKind::RasPage { .. } => "ras_page",
            EventKind::PacketSent { .. } => "packet_sent",
            EventKind::PacketForwarded { .. } => "packet_forwarded",
            EventKind::PacketDelivered { .. } => "packet_delivered",
            EventKind::NodeDeath { .. } => "node_death",
            EventKind::CellChange { .. } => "cell_change",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::PageRetry { .. } => "page_retry",
            EventKind::GatewayHandoffTimeout { .. } => "gateway_handoff_timeout",
        }
    }

    /// The stack layer this event belongs to.
    pub fn layer(&self) -> Layer {
        match self {
            EventKind::MacTx { .. }
            | EventKind::MacRx { .. }
            | EventKind::MacCollision { .. }
            | EventKind::MacRetry { .. }
            | EventKind::MacDrop { .. } => Layer::Mac,
            EventKind::RadioMode { .. } => Layer::Radio,
            EventKind::BatteryLevel { .. } | EventKind::NodeDeath { .. } => Layer::Energy,
            EventKind::GatewayElect { .. }
            | EventKind::GatewayRetire { .. }
            | EventKind::PacketForwarded { .. }
            | EventKind::CellChange { .. }
            | EventKind::GatewayHandoffTimeout { .. } => Layer::Route,
            EventKind::RasPage { .. } | EventKind::PageRetry { .. } => Layer::Ras,
            EventKind::PacketSent { .. } | EventKind::PacketDelivered { .. } => Layer::App,
            EventKind::FaultInjected { .. } => Layer::Fault,
        }
    }

    /// The node the event is about (its primary label).
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            EventKind::MacTx { node, .. }
            | EventKind::MacRx { node, .. }
            | EventKind::MacCollision { node, .. }
            | EventKind::MacRetry { node, .. }
            | EventKind::MacDrop { node, .. }
            | EventKind::RadioMode { node, .. }
            | EventKind::BatteryLevel { node, .. }
            | EventKind::GatewayElect { node, .. }
            | EventKind::GatewayRetire { node, .. }
            | EventKind::PacketForwarded { node, .. }
            | EventKind::PacketDelivered { node, .. }
            | EventKind::NodeDeath { node }
            | EventKind::CellChange { node, .. }
            | EventKind::FaultInjected { node, .. }
            | EventKind::PageRetry { node, .. }
            | EventKind::GatewayHandoffTimeout { node, .. } => Some(node),
            EventKind::RasPage { by, .. } => Some(by),
            EventKind::PacketSent { src, .. } => Some(src),
        }
    }

    /// The grid cell the event is about, when one is inherent to it.
    pub fn cell(&self) -> Option<GridCoord> {
        match *self {
            EventKind::GatewayElect { cell, .. }
            | EventKind::GatewayRetire { cell, .. }
            | EventKind::GatewayHandoffTimeout { cell, .. } => Some(cell),
            EventKind::CellChange { to, .. } => Some(to),
            EventKind::RasPage {
                signal: PageSignal::Grid(cell),
                ..
            } => Some(cell),
            _ => None,
        }
    }
}

impl Event {
    /// Label view of this event under a run-wide `protocol` label.
    pub fn labels<'a>(&self, protocol: &'a str) -> Labels<'a> {
        Labels {
            protocol,
            layer: self.kind.layer(),
            node: self.kind.node(),
            cell: self.kind.cell(),
        }
    }

    /// Fold the canonical encoding of this event into `h`.
    pub fn fold(&self, h: &mut Fnv64) {
        h.write_u64(self.t.as_nanos());
        h.write_u8(self.kind.tag());
        match self.kind {
            EventKind::MacTx { node, dst, bytes } => {
                h.write_u32(node.0);
                fold_opt_node(h, dst);
                h.write_u32(bytes);
            }
            EventKind::MacRx { node, from, bytes } => {
                h.write_u32(node.0);
                h.write_u32(from.0);
                h.write_u32(bytes);
            }
            EventKind::MacCollision { node, from } => {
                h.write_u32(node.0);
                h.write_u32(from.0);
            }
            EventKind::MacRetry { node, attempt } => {
                h.write_u32(node.0);
                h.write_u32(attempt);
            }
            EventKind::MacDrop { node, dst } => {
                h.write_u32(node.0);
                fold_opt_node(h, dst);
            }
            EventKind::RadioMode { node, from, to } => {
                h.write_u32(node.0);
                h.write_u8(mode_tag(from));
                h.write_u8(mode_tag(to));
            }
            EventKind::BatteryLevel { node, from, to } => {
                h.write_u32(node.0);
                h.write_u8(level_tag(from));
                h.write_u8(level_tag(to));
            }
            EventKind::GatewayElect { node, cell } | EventKind::GatewayRetire { node, cell } => {
                h.write_u32(node.0);
                fold_cell(h, cell);
            }
            EventKind::RasPage { by, signal } => {
                h.write_u32(by.0);
                match signal {
                    PageSignal::Host(id) => {
                        h.write_u8(0);
                        h.write_u32(id.0);
                    }
                    PageSignal::Grid(c) => {
                        h.write_u8(1);
                        fold_cell(h, c);
                    }
                }
            }
            EventKind::PacketSent { src, flow, seq } => {
                h.write_u32(src.0);
                h.write_u32(flow);
                h.write_u64(seq);
            }
            EventKind::PacketForwarded { node, flow, seq }
            | EventKind::PacketDelivered { node, flow, seq } => {
                h.write_u32(node.0);
                h.write_u32(flow);
                h.write_u64(seq);
            }
            EventKind::NodeDeath { node } => {
                h.write_u32(node.0);
            }
            EventKind::CellChange { node, from, to } => {
                h.write_u32(node.0);
                fold_cell(h, from);
                fold_cell(h, to);
            }
            EventKind::FaultInjected { node, fault } => {
                h.write_u32(node.0);
                h.write_u8(fault.tag());
            }
            EventKind::PageRetry {
                node,
                target,
                attempt,
            } => {
                h.write_u32(node.0);
                h.write_u32(target.0);
                h.write_u32(attempt);
            }
            EventKind::GatewayHandoffTimeout { node, cell } => {
                h.write_u32(node.0);
                fold_cell(h, cell);
            }
        }
    }

    /// One JSONL object.  Time is integer nanoseconds (`t_ns`) so the
    /// rendering is exact and diffable; labels come first, then the
    /// kind-specific fields.  No external JSON dependency is needed — every
    /// emitted value is a number, a plain identifier-like string, or a
    /// two-element int array.
    pub fn to_jsonl(&self, protocol: &str) -> String {
        let l = self.labels(protocol);
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"t_ns\":{},\"kind\":\"{}\",\"layer\":\"{}\",\"protocol\":\"{}\"",
            self.t.as_nanos(),
            self.kind.name(),
            l.layer.name(),
            protocol
        );
        if let Some(n) = l.node {
            let _ = write!(s, ",\"node\":{}", n.0);
        }
        if let Some(c) = l.cell {
            let _ = write!(s, ",\"cell\":[{},{}]", c.x, c.y);
        }
        match self.kind {
            EventKind::MacTx { dst, bytes, .. } => {
                match dst {
                    Some(d) => {
                        let _ = write!(s, ",\"dst\":{}", d.0);
                    }
                    None => s.push_str(",\"dst\":\"*\""),
                }
                let _ = write!(s, ",\"bytes\":{bytes}");
            }
            EventKind::MacRx { from, bytes, .. } => {
                let _ = write!(s, ",\"from\":{},\"bytes\":{}", from.0, bytes);
            }
            EventKind::MacCollision { from, .. } => {
                let _ = write!(s, ",\"from\":{}", from.0);
            }
            EventKind::MacRetry { attempt, .. } => {
                let _ = write!(s, ",\"attempt\":{attempt}");
            }
            EventKind::MacDrop { dst, .. } => match dst {
                Some(d) => {
                    let _ = write!(s, ",\"dst\":{}", d.0);
                }
                None => s.push_str(",\"dst\":\"*\""),
            },
            EventKind::RadioMode { from, to, .. } => {
                let _ = write!(s, ",\"from\":\"{from:?}\",\"to\":\"{to:?}\"");
            }
            EventKind::BatteryLevel { from, to, .. } => {
                let _ = write!(s, ",\"from\":\"{from:?}\",\"to\":\"{to:?}\"");
            }
            EventKind::RasPage { signal, .. } => match signal {
                PageSignal::Host(id) => {
                    let _ = write!(s, ",\"target_host\":{}", id.0);
                }
                PageSignal::Grid(c) => {
                    let _ = write!(s, ",\"target_grid\":[{},{}]", c.x, c.y);
                }
            },
            EventKind::PacketSent { flow, seq, .. }
            | EventKind::PacketForwarded { flow, seq, .. }
            | EventKind::PacketDelivered { flow, seq, .. } => {
                let _ = write!(s, ",\"flow\":{flow},\"seq\":{seq}");
            }
            EventKind::CellChange { from, .. } => {
                let _ = write!(s, ",\"from_cell\":[{},{}]", from.x, from.y);
            }
            EventKind::FaultInjected { fault, .. } => {
                let _ = write!(s, ",\"fault\":\"{}\"", fault.name());
            }
            EventKind::PageRetry { target, attempt, .. } => {
                let _ = write!(s, ",\"target\":{},\"attempt\":{}", target.0, attempt);
            }
            EventKind::GatewayElect { .. }
            | EventKind::GatewayRetire { .. }
            | EventKind::GatewayHandoffTimeout { .. }
            | EventKind::NodeDeath { .. } => {}
        }
        s.push('}');
        s
    }

    /// ns-2-flavoured single-line rendering: `<op> <time> _<node>_ <details>`.
    pub fn to_line(&self) -> String {
        let t = self.t.as_secs_f64();
        let mut s = String::new();
        match self.kind {
            EventKind::MacTx { node, dst, bytes } => {
                let dst = match dst {
                    None => "*".to_string(),
                    Some(d) => d.to_string(),
                };
                let _ = write!(s, "s {t:.6} _{node}_ MAC {dst} {bytes} bytes");
            }
            EventKind::MacRx { node, from, bytes } => {
                let _ = write!(s, "r {t:.6} _{node}_ MAC {from} {bytes} bytes");
            }
            EventKind::MacCollision { node, from } => {
                let _ = write!(s, "D {t:.6} _{node}_ COL {from}");
            }
            EventKind::MacRetry { node, attempt } => {
                let _ = write!(s, "R {t:.6} _{node}_ RET attempt {attempt}");
            }
            EventKind::MacDrop { node, dst } => {
                let dst = match dst {
                    None => "*".to_string(),
                    Some(d) => d.to_string(),
                };
                let _ = write!(s, "D {t:.6} _{node}_ RET {dst}");
            }
            EventKind::RadioMode { node, from, to } => {
                let _ = write!(s, "m {t:.6} _{node}_ PHY {from:?}>{to:?}");
            }
            EventKind::BatteryLevel { node, from, to } => {
                let _ = write!(s, "e {t:.6} _{node}_ LVL {from:?}>{to:?}");
            }
            EventKind::GatewayElect { node, cell } => {
                let _ = write!(s, "g {t:.6} _{node}_ GW elect {cell}");
            }
            EventKind::GatewayRetire { node, cell } => {
                let _ = write!(s, "g {t:.6} _{node}_ GW retire {cell}");
            }
            EventKind::RasPage { by, signal } => {
                let what = match signal {
                    PageSignal::Host(h) => format!("host {h}"),
                    PageSignal::Grid(g) => format!("grid {g}"),
                };
                let _ = write!(s, "p {t:.6} _{by}_ RAS {what}");
            }
            EventKind::PacketSent { src, flow, seq } => {
                let _ = write!(s, "s {t:.6} _{src}_ AGT {flow}:{seq}");
            }
            EventKind::PacketForwarded { node, flow, seq } => {
                let _ = write!(s, "f {t:.6} _{node}_ RTR {flow}:{seq}");
            }
            EventKind::PacketDelivered { node, flow, seq } => {
                let _ = write!(s, "r {t:.6} _{node}_ AGT {flow}:{seq}");
            }
            EventKind::NodeDeath { node } => {
                let _ = write!(s, "x {t:.6} _{node}_ ENE battery");
            }
            EventKind::CellChange { node, from, to } => {
                let _ = write!(s, "c {t:.6} _{node}_ GRID {from}>{to}");
            }
            EventKind::FaultInjected { node, fault } => {
                let _ = write!(s, "F {t:.6} _{node}_ FLT {}", fault.name());
            }
            EventKind::PageRetry {
                node,
                target,
                attempt,
            } => {
                let _ = write!(s, "p {t:.6} _{node}_ RAS retry {target} attempt {attempt}");
            }
            EventKind::GatewayHandoffTimeout { node, cell } => {
                let _ = write!(s, "g {t:.6} _{node}_ GW timeout {cell}");
            }
        }
        s
    }

    /// Convenience: MAC tx from the link-layer frame addressing.
    pub fn mac_tx(t: SimTime, node: NodeId, kind: FrameKind, bytes: u32) -> Event {
        Event {
            t,
            kind: EventKind::MacTx {
                node,
                dst: kind.dst(),
                bytes,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn labels_follow_the_hierarchy() {
        let e = Event {
            t: at(10),
            kind: EventKind::GatewayElect {
                node: NodeId(7),
                cell: GridCoord::new(2, 3),
            },
        };
        let l = e.labels("ECGRID");
        assert_eq!(l.protocol, "ECGRID");
        assert_eq!(l.layer, Layer::Route);
        assert_eq!(l.node, Some(NodeId(7)));
        assert_eq!(l.cell, Some(GridCoord::new(2, 3)));
    }

    #[test]
    fn every_kind_has_distinct_tag_and_name() {
        let kinds = [
            EventKind::MacTx {
                node: NodeId(0),
                dst: None,
                bytes: 1,
            },
            EventKind::MacRx {
                node: NodeId(0),
                from: NodeId(1),
                bytes: 1,
            },
            EventKind::MacCollision {
                node: NodeId(0),
                from: NodeId(1),
            },
            EventKind::MacRetry {
                node: NodeId(0),
                attempt: 1,
            },
            EventKind::MacDrop {
                node: NodeId(0),
                dst: Some(NodeId(1)),
            },
            EventKind::RadioMode {
                node: NodeId(0),
                from: RadioMode::Idle,
                to: RadioMode::Tx,
            },
            EventKind::BatteryLevel {
                node: NodeId(0),
                from: EnergyLevel::Upper,
                to: EnergyLevel::Boundary,
            },
            EventKind::GatewayElect {
                node: NodeId(0),
                cell: GridCoord::new(0, 0),
            },
            EventKind::GatewayRetire {
                node: NodeId(0),
                cell: GridCoord::new(0, 0),
            },
            EventKind::RasPage {
                by: NodeId(0),
                signal: PageSignal::Host(NodeId(1)),
            },
            EventKind::PacketSent {
                src: NodeId(0),
                flow: 0,
                seq: 0,
            },
            EventKind::PacketForwarded {
                node: NodeId(0),
                flow: 0,
                seq: 0,
            },
            EventKind::PacketDelivered {
                node: NodeId(0),
                flow: 0,
                seq: 0,
            },
            EventKind::NodeDeath { node: NodeId(0) },
            EventKind::CellChange {
                node: NodeId(0),
                from: GridCoord::new(0, 0),
                to: GridCoord::new(0, 1),
            },
            EventKind::FaultInjected {
                node: NodeId(0),
                fault: FaultKind::Crash,
            },
            EventKind::PageRetry {
                node: NodeId(0),
                target: NodeId(1),
                attempt: 1,
            },
            EventKind::GatewayHandoffTimeout {
                node: NodeId(0),
                cell: GridCoord::new(0, 0),
            },
        ];
        let mut tags: Vec<u8> = kinds.iter().map(|k| k.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), kinds.len(), "tags must be distinct");
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len(), "names must be distinct");
    }

    #[test]
    fn jsonl_is_one_flat_object() {
        let e = Event {
            t: SimTime::from_millis(1500),
            kind: EventKind::MacTx {
                node: NodeId(3),
                dst: Some(NodeId(5)),
                bytes: 564,
            },
        };
        let j = e.to_jsonl("GRID");
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"t_ns\":1500000000"));
        assert!(j.contains("\"kind\":\"mac_tx\""));
        assert!(j.contains("\"layer\":\"mac\""));
        assert!(j.contains("\"protocol\":\"GRID\""));
        assert!(j.contains("\"node\":3"));
        assert!(j.contains("\"dst\":5"));
        assert!(!j.contains('\n'));
    }

    #[test]
    fn broadcast_tx_renders_star() {
        let e = Event::mac_tx(at(5), NodeId(0), FrameKind::Broadcast, 72);
        assert_eq!(e.to_line(), "s 0.005000 _0_ MAC * 72 bytes");
        assert!(e.to_jsonl("ECGRID").contains("\"dst\":\"*\""));
    }

    #[test]
    fn digest_encoding_separates_similar_events() {
        // Same fields, different kind tag -> different digest.
        let a = Event {
            t: at(1),
            kind: EventKind::PacketSent {
                src: NodeId(1),
                flow: 2,
                seq: 3,
            },
        };
        let b = Event {
            t: at(1),
            kind: EventKind::PacketDelivered {
                node: NodeId(1),
                flow: 2,
                seq: 3,
            },
        };
        let mut ha = Fnv64::new();
        a.fold(&mut ha);
        let mut hb = Fnv64::new();
        b.fold(&mut hb);
        assert_ne!(ha.finish(), hb.finish());
    }
}
