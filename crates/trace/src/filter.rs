//! Subscription filters over the hierarchical event labels.
//!
//! A subscriber of the sweep service names what it wants by the same
//! label hierarchy every event already carries — protocol, layer, node,
//! cell (see [`Labels`]) — and the service applies the filter server-side
//! so a narrow subscription costs the wire only its own events.  An empty
//! filter matches everything.

use crate::event::{Labels, Layer};

/// Parse a layer by its canonical name (the strings [`Layer::name`]
/// renders).
pub fn parse_layer(s: &str) -> Option<Layer> {
    Some(match s {
        "sched" => Layer::Sched,
        "mac" => Layer::Mac,
        "radio" => Layer::Radio,
        "energy" => Layer::Energy,
        "ras" => Layer::Ras,
        "route" => Layer::Route,
        "app" => Layer::App,
        "fault" => Layer::Fault,
        _ => return None,
    })
}

/// A conjunctive label filter: every populated axis must match; an
/// unpopulated axis matches anything.  `layers` is a disjunction within
/// its axis (subscribe to `mac` *and* `route` events at once).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventFilter {
    /// Accepted layers; empty = all layers.
    pub layers: Vec<Layer>,
    /// Only events about this node.
    pub node: Option<u32>,
    /// Only events about this grid cell.
    pub cell: Option<(i32, i32)>,
    /// Only events of runs under this protocol label (e.g. "ECGRID").
    pub protocol: Option<String>,
}

impl EventFilter {
    /// The match-everything filter.
    pub fn all() -> Self {
        EventFilter::default()
    }

    /// True when no axis is constrained.
    pub fn is_all(&self) -> bool {
        self.layers.is_empty() && self.node.is_none() && self.cell.is_none() && self.protocol.is_none()
    }

    /// Parse a comma-separated layer list ("mac,route"); empty string
    /// means all layers.  `None` on any unknown layer name.
    pub fn with_layers(mut self, spec: &str) -> Option<Self> {
        self.layers.clear();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            self.layers.push(parse_layer(part)?);
        }
        Some(self)
    }

    pub fn with_node(mut self, node: u32) -> Self {
        self.node = Some(node);
        self
    }

    pub fn with_cell(mut self, x: i32, y: i32) -> Self {
        self.cell = Some((x, y));
        self
    }

    pub fn with_protocol(mut self, protocol: impl Into<String>) -> Self {
        self.protocol = Some(protocol.into());
        self
    }

    /// Does an event with these labels pass the filter?
    pub fn matches(&self, labels: &Labels<'_>) -> bool {
        if !self.layers.is_empty() && !self.layers.contains(&labels.layer) {
            return false;
        }
        if let Some(n) = self.node {
            if labels.node.map(|id| id.0) != Some(n) {
                return false;
            }
        }
        if let Some((x, y)) = self.cell {
            match labels.cell {
                Some(c) if c.x == x && c.y == y => {}
                _ => return false,
            }
        }
        if let Some(p) = &self.protocol {
            if p != labels.protocol {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use geo::GridCoord;
    use radio::NodeId;
    use sim_engine::SimTime;

    fn gateway_event() -> Event {
        Event {
            t: SimTime::from_millis(5),
            kind: EventKind::GatewayElect {
                node: NodeId(7),
                cell: GridCoord::new(2, 3),
            },
        }
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = EventFilter::all();
        assert!(f.is_all());
        assert!(f.matches(&gateway_event().labels("ECGRID")));
    }

    #[test]
    fn layer_axis_is_a_disjunction() {
        let f = EventFilter::all().with_layers("mac,route").unwrap();
        assert!(f.matches(&gateway_event().labels("ECGRID"))); // route
        let mac_only = EventFilter::all().with_layers("mac").unwrap();
        assert!(!mac_only.matches(&gateway_event().labels("ECGRID")));
    }

    #[test]
    fn node_and_cell_axes_constrain() {
        let labels = gateway_event().labels("ECGRID");
        assert!(EventFilter::all().with_node(7).matches(&labels));
        assert!(!EventFilter::all().with_node(8).matches(&labels));
        assert!(EventFilter::all().with_cell(2, 3).matches(&labels));
        assert!(!EventFilter::all().with_cell(3, 2).matches(&labels));
    }

    #[test]
    fn protocol_axis_constrains() {
        let labels = gateway_event().labels("ECGRID");
        assert!(EventFilter::all().with_protocol("ECGRID").matches(&labels));
        assert!(!EventFilter::all().with_protocol("GAF").matches(&labels));
    }

    #[test]
    fn unknown_layer_name_is_rejected() {
        assert!(EventFilter::all().with_layers("mac,bogus").is_none());
        assert!(EventFilter::all().with_layers("").unwrap().layers.is_empty());
    }

    #[test]
    fn every_layer_name_roundtrips() {
        for l in [
            Layer::Sched,
            Layer::Mac,
            Layer::Radio,
            Layer::Energy,
            Layer::Ras,
            Layer::Route,
            Layer::App,
            Layer::Fault,
        ] {
            assert_eq!(parse_layer(l.name()), Some(l));
        }
    }
}
