//! Deterministic trace & metrics observability layer.
//!
//! The simulator's evaluation rests on trusting what happened *inside* a
//! run — gateway elections, RAS wake-ups, sleep transitions, MAC retries —
//! yet aggregates alone cannot prove two runs behaved identically.  This
//! crate provides the missing observables:
//!
//! * [`Event`] / [`EventKind`] — typed simulation events with a
//!   hierarchical label model ([`Labels`]: `protocol` / `layer` / `node` /
//!   `cell`), emitted at layer boundaries (scheduler, MAC, radio, energy,
//!   RAS, routing, application).
//! * [`Recorder`] — zero-cost-when-disabled event sink.  Every recorded
//!   event is folded into a canonical FNV-1a 64 [`TraceDigest`]; in
//!   [`TraceMode::Full`] the events are also buffered for JSONL export and
//!   invariant checking.
//! * [`TraceDigest`] — the keystone: identical (scenario, seed) runs must
//!   produce identical digests regardless of thread count and scheduler
//!   backend, turning "the sim is reproducible" into an enforced
//!   regression test and giving perf work a behavior-preservation oracle.
//! * [`Registry`] — counter / gauge / histogram registry with
//!   deterministic iteration order.
//! * [`SchedProfile`] — scheduler profiling: events dispatched per domain,
//!   queue-depth high-water mark, events/second.
//!
//! The digest intentionally covers only *semantic* events (what the
//! simulated network did), never profiling data (how fast the host machine
//! did it), so it is stable across machines, backends and thread counts.

pub mod digest;
pub mod event;
pub mod filter;
pub mod profile;
pub mod recorder;
pub mod registry;

pub use digest::{Fnv64, TraceDigest};
pub use event::{Event, EventKind, FaultKind, Labels, Layer};
pub use filter::EventFilter;
pub use profile::SchedProfile;
pub use recorder::{EventSink, Recorder, TraceMode};
pub use registry::{Histogram, Registry};

/// Render a whole trace as classic one-line-per-event text (ns-2 style).
pub fn render_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 48);
    for e in events {
        out.push_str(&e.to_line());
        out.push('\n');
    }
    out
}
