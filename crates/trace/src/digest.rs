//! Canonical FNV-1a 64 digest over an event stream.
//!
//! FNV-1a is order-sensitive, which is exactly what a *replay* digest
//! needs: two runs are equal only if they produced the same events in the
//! same order.  The encoding is fixed-width little-endian per field with a
//! one-byte tag per event kind (see [`crate::event`]), so the digest is
//! independent of any textual rendering.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    pub fn write_i32(&mut self, v: i32) {
        self.write(&v.to_le_bytes());
    }

    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The digest of a finished trace.  Displays as 16 hex digits — the form
/// stored in the golden fixtures under `tests/golden/`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceDigest(pub u64);

impl fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl TraceDigest {
    /// Parse the 16-hex-digit form written by `Display`.
    pub fn parse(s: &str) -> Option<TraceDigest> {
        let s = s.trim();
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceDigest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference values for FNV-1a 64.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf29ce484222325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h2 = Fnv64::new();
        h2.write(b"foobar");
        assert_eq!(h2.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn digest_roundtrips_through_display() {
        let d = TraceDigest(0x0123_4567_89ab_cdef);
        assert_eq!(d.to_string(), "0123456789abcdef");
        assert_eq!(TraceDigest::parse(&d.to_string()), Some(d));
        assert_eq!(TraceDigest::parse("xyz"), None);
        assert_eq!(TraceDigest::parse("0123"), None);
    }

    #[test]
    fn write_order_matters() {
        let mut a = Fnv64::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = Fnv64::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }
}
