//! Structured event traces — the equivalent of ns-2's trace files.
//!
//! When enabled (`World::enable_event_trace`), the world records one
//! [`TraceRecord`] per MAC/application event.  Records can be inspected
//! programmatically (tests, debuggers) or formatted as classic
//! one-line-per-event text with [`TraceRecord::to_line`] for eyeballing
//! and diffing runs.  Tracing a 2000 s × 100 host run produces millions
//! of records — enable it for focused scenarios only.

use radio::{FrameKind, NodeId, PageSignal};
use sim_engine::SimTime;
use std::fmt::Write as _;

/// One traced event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceRecord {
    /// A frame was put on the air.
    TxStart {
        t: SimTime,
        node: NodeId,
        kind: FrameKind,
        wire_bytes: u32,
    },
    /// A frame was received successfully.
    RxOk {
        t: SimTime,
        node: NodeId,
        from: NodeId,
        wire_bytes: u32,
    },
    /// A reception was destroyed by a collision.
    RxCollision { t: SimTime, node: NodeId, from: NodeId },
    /// A unicast was dropped after exhausting its retransmission budget.
    MacDrop { t: SimTime, node: NodeId, dst: NodeId },
    /// A RAS page was transmitted.
    Page {
        t: SimTime,
        by: NodeId,
        signal: PageSignal,
    },
    /// A host's battery ran out.
    Death { t: SimTime, node: NodeId },
    /// The application at `src` emitted packet (flow, seq).
    AppSend {
        t: SimTime,
        src: NodeId,
        flow: u32,
        seq: u64,
    },
    /// The application at `dst` received packet (flow, seq).
    AppRecv {
        t: SimTime,
        dst: NodeId,
        flow: u32,
        seq: u64,
    },
}

impl TraceRecord {
    /// The record's timestamp.
    pub fn time(&self) -> SimTime {
        match self {
            TraceRecord::TxStart { t, .. }
            | TraceRecord::RxOk { t, .. }
            | TraceRecord::RxCollision { t, .. }
            | TraceRecord::MacDrop { t, .. }
            | TraceRecord::Page { t, .. }
            | TraceRecord::Death { t, .. }
            | TraceRecord::AppSend { t, .. }
            | TraceRecord::AppRecv { t, .. } => *t,
        }
    }

    /// ns-2-flavoured single-line rendering:
    /// `<op> <time> _<node>_ <details>`.
    pub fn to_line(&self) -> String {
        let mut s = String::new();
        match self {
            TraceRecord::TxStart {
                t,
                node,
                kind,
                wire_bytes,
            } => {
                let dst = match kind {
                    FrameKind::Broadcast => "*".to_string(),
                    FrameKind::Unicast(d) => d.to_string(),
                };
                let _ = write!(
                    s,
                    "s {:.6} _{}_ MAC {} {} bytes",
                    t.as_secs_f64(),
                    node,
                    dst,
                    wire_bytes
                );
            }
            TraceRecord::RxOk {
                t,
                node,
                from,
                wire_bytes,
            } => {
                let _ = write!(
                    s,
                    "r {:.6} _{}_ MAC {} {} bytes",
                    t.as_secs_f64(),
                    node,
                    from,
                    wire_bytes
                );
            }
            TraceRecord::RxCollision { t, node, from } => {
                let _ = write!(s, "D {:.6} _{}_ COL {}", t.as_secs_f64(), node, from);
            }
            TraceRecord::MacDrop { t, node, dst } => {
                let _ = write!(s, "D {:.6} _{}_ RET {}", t.as_secs_f64(), node, dst);
            }
            TraceRecord::Page { t, by, signal } => {
                let what = match signal {
                    PageSignal::Host(h) => format!("host {h}"),
                    PageSignal::Grid(g) => format!("grid {g}"),
                };
                let _ = write!(s, "p {:.6} _{}_ RAS {}", t.as_secs_f64(), by, what);
            }
            TraceRecord::Death { t, node } => {
                let _ = write!(s, "x {:.6} _{}_ ENE battery", t.as_secs_f64(), node);
            }
            TraceRecord::AppSend { t, src, flow, seq } => {
                let _ = write!(s, "s {:.6} _{}_ AGT {}:{}", t.as_secs_f64(), src, flow, seq);
            }
            TraceRecord::AppRecv { t, dst, flow, seq } => {
                let _ = write!(s, "r {:.6} _{}_ AGT {}:{}", t.as_secs_f64(), dst, flow, seq);
            }
        }
        s
    }
}

/// Render a whole trace as text (one event per line, time-ordered as
/// recorded).
pub fn render_trace(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 48);
    for r in records {
        out.push_str(&r.to_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo::GridCoord;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn lines_are_compact_and_typed() {
        let records = vec![
            TraceRecord::AppSend {
                t: t(1000),
                src: NodeId(3),
                flow: 0,
                seq: 7,
            },
            TraceRecord::TxStart {
                t: t(1001),
                node: NodeId(3),
                kind: FrameKind::Unicast(NodeId(5)),
                wire_bytes: 564,
            },
            TraceRecord::RxOk {
                t: t(1003),
                node: NodeId(5),
                from: NodeId(3),
                wire_bytes: 564,
            },
            TraceRecord::RxCollision {
                t: t(1004),
                node: NodeId(6),
                from: NodeId(3),
            },
            TraceRecord::MacDrop {
                t: t(1100),
                node: NodeId(3),
                dst: NodeId(9),
            },
            TraceRecord::Page {
                t: t(1200),
                by: NodeId(5),
                signal: PageSignal::Grid(GridCoord::new(2, 3)),
            },
            TraceRecord::Death {
                t: t(9000),
                node: NodeId(1),
            },
            TraceRecord::AppRecv {
                t: t(1005),
                dst: NodeId(5),
                flow: 0,
                seq: 7,
            },
        ];
        let text = render_trace(&records);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], "s 1.000000 _3_ AGT 0:7");
        assert_eq!(lines[1], "s 1.001000 _3_ MAC 5 564 bytes");
        assert_eq!(lines[2], "r 1.003000 _5_ MAC 3 564 bytes");
        assert!(lines[3].starts_with("D ") && lines[3].contains("COL"));
        assert!(lines[4].contains("RET 9"));
        assert!(lines[5].contains("RAS grid (2,3)"));
        assert!(lines[6].contains("ENE battery"));
        assert_eq!(lines[7], "r 1.005000 _5_ AGT 0:7");
    }

    #[test]
    fn broadcast_tx_uses_star() {
        let r = TraceRecord::TxStart {
            t: t(5),
            node: NodeId(0),
            kind: FrameKind::Broadcast,
            wire_bytes: 72,
        };
        assert_eq!(r.to_line(), "s 0.005000 _0_ MAC * 72 bytes");
        assert_eq!(r.time(), t(5));
    }
}
