//! The protocol-facing command interface.
//!
//! A [`Ctx`] is handed to every protocol callback.  Reads (time, own
//! position, battery, …) are served from a snapshot taken when the
//! callback is dispatched; writes are queued as commands and applied by
//! the [`World`](crate::world::World) after the callback returns, in call
//! order.

use crate::protocol::Protocol;
use energy::{EnergyLevel, RadioMode};
use geo::{GridCoord, GridMap, Point2, Vec2};
use mobility::MobilityTrace;
use radio::{FrameKind, NodeId};
use rand::rngs::StdRng;
use sim_engine::{SimDuration, SimTime};

/// An application-layer data packet (one CBR packet).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppPacket {
    pub flow: u32,
    pub seq: u64,
    /// Payload bytes (512 in the paper's CBR flows).
    pub bytes: u32,
}

impl AppPacket {
    /// The ledger key of this packet.
    pub fn key(&self) -> (u32, u64) {
        (self.flow, self.seq)
    }
}

/// Handle to a pending protocol timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

/// Read-only snapshot of the host's state at dispatch time.
#[derive(Clone, Copy, Debug)]
pub struct NodeView {
    pub now: SimTime,
    pub id: NodeId,
    pub pos: Point2,
    pub vel: Vec2,
    pub cell: GridCoord,
    pub mode: RadioMode,
    pub rbrc: f64,
    pub level: EnergyLevel,
    pub remaining_j: f64,
}

pub(crate) enum Cmd<P: Protocol> {
    Send {
        kind: FrameKind,
        msg: P::Msg,
    },
    Sleep,
    Wake,
    PageHost(NodeId),
    PageGrid(GridCoord),
    SetTimer {
        id: TimerId,
        delay: SimDuration,
        timer: P::Timer,
    },
    CancelTimer(TimerId),
    DeliverApp(AppPacket),
    Note(String),
    /// A structured trace event from the protocol layer (gateway
    /// elections, forwards, …); timestamped and recorded by the world.
    Emit(trace::EventKind),
}

/// The command/query interface a protocol uses during a callback.
pub struct Ctx<'a, P: Protocol> {
    pub(crate) view: NodeView,
    pub(crate) grid: &'a GridMap,
    pub(crate) trace: &'a MobilityTrace,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) cmds: Vec<Cmd<P>>,
    pub(crate) tracing: bool,
    pub(crate) emitting: bool,
}

impl<'a, P: Protocol> Ctx<'a, P> {
    // ----- queries ---------------------------------------------------

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.view.now
    }

    /// This host's id (also its RAS paging sequence).
    #[inline]
    pub fn id(&self) -> NodeId {
        self.view.id
    }

    /// GPS position.
    #[inline]
    pub fn pos(&self) -> Point2 {
        self.view.pos
    }

    /// GPS velocity.
    #[inline]
    pub fn vel(&self) -> Vec2 {
        self.view.vel
    }

    /// The grid cell this host is in.
    #[inline]
    pub fn cell(&self) -> GridCoord {
        self.view.cell
    }

    /// Current radio mode.
    #[inline]
    pub fn mode(&self) -> RadioMode {
        self.view.mode
    }

    /// Ratio of battery remaining capacity (Eq. 1).
    #[inline]
    pub fn rbrc(&self) -> f64 {
        self.view.rbrc
    }

    /// Battery level class (upper/boundary/lower).
    #[inline]
    pub fn level(&self) -> EnergyLevel {
        self.view.level
    }

    /// Remaining battery energy in joules.
    #[inline]
    pub fn remaining_j(&self) -> f64 {
        self.view.remaining_j
    }

    /// The grid partition of the field.
    #[inline]
    pub fn grid(&self) -> &GridMap {
        self.grid
    }

    /// Distance from the host to the center of its current grid — the
    /// `dist` field of the HELLO message.
    pub fn dist_to_center(&self) -> f64 {
        self.view.pos.distance(self.grid.cell_center(self.view.cell))
    }

    /// The dwell-duration estimate of §3.2: how long the host expects to
    /// stay in its current grid, from instantaneous position and velocity,
    /// capped at `horizon_secs`.
    pub fn estimated_dwell_secs(&self, horizon_secs: f64) -> f64 {
        self.trace.estimated_dwell(self.grid, self.view.now, horizon_secs)
    }

    /// Deterministic per-host RNG stream (for jitter and backoff).
    #[inline]
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    // ----- commands ---------------------------------------------------

    /// Queue a frame on the MAC.  If the host is asleep it is woken first
    /// (a host must power its transceiver to transmit, §3.3 ACQ).
    pub fn send(&mut self, kind: FrameKind, msg: P::Msg) {
        self.cmds.push(Cmd::Send { kind, msg });
    }

    /// Convenience: broadcast a message.
    pub fn broadcast(&mut self, msg: P::Msg) {
        self.send(FrameKind::Broadcast, msg);
    }

    /// Convenience: unicast a message.
    pub fn unicast(&mut self, dst: NodeId, msg: P::Msg) {
        self.send(FrameKind::Unicast(dst), msg);
    }

    /// Turn the transceiver off (enter sleep mode).
    pub fn sleep(&mut self) {
        self.cmds.push(Cmd::Sleep);
    }

    /// Turn the transceiver on (enter active/idle mode).
    pub fn wake(&mut self) {
        self.cmds.push(Cmd::Wake);
    }

    /// Send a RAS paging sequence to wake one host.
    pub fn page_host(&mut self, id: NodeId) {
        self.cmds.push(Cmd::PageHost(id));
    }

    /// Send a grid's RAS broadcast sequence to wake everyone in it.
    pub fn page_grid(&mut self, cell: GridCoord) {
        self.cmds.push(Cmd::PageGrid(cell));
    }

    /// Arm a timer `delay` from now.
    pub fn set_timer(&mut self, delay: SimDuration, timer: P::Timer) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.cmds.push(Cmd::SetTimer { id, delay, timer });
        id
    }

    /// Arm a timer with fractional-second delay.
    pub fn set_timer_secs(&mut self, delay_secs: f64, timer: P::Timer) -> TimerId {
        self.set_timer(SimDuration::from_secs_f64(delay_secs), timer)
    }

    /// Disarm a pending timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cmds.push(Cmd::CancelTimer(id));
    }

    /// Hand a data packet to this host's application — the packet has
    /// reached its destination (ledger records the delivery).
    pub fn deliver_app(&mut self, packet: AppPacket) {
        self.cmds.push(Cmd::DeliverApp(packet));
    }

    /// Append a line to the world's trace log (no-op unless tracing was
    /// enabled; used by the walkthrough examples and debugging).
    pub fn note(&mut self, text: impl FnOnce() -> String) {
        if self.tracing {
            let s = text();
            self.cmds.push(Cmd::Note(s));
        }
    }

    /// Record a structured trace event (no-op unless the world's event
    /// recorder is enabled — same zero-cost discipline as [`Ctx::note`]).
    /// Protocols use this for control-plane observables the world cannot
    /// see itself: gateway elections/retirements, packet forwards.
    pub fn emit(&mut self, event: impl FnOnce() -> trace::EventKind) {
        if self.emitting {
            let e = event();
            self.cmds.push(Cmd::Emit(e));
        }
    }
}
