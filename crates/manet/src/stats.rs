//! Aggregate simulation counters (diagnostics; the paper's metrics live in
//! `metrics`).

/// Frame-level and event-level counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Transmissions started (frames put on the air).
    pub tx_started: u64,
    /// Broadcast frames transmitted.
    pub broadcasts: u64,
    /// Unicast frames transmitted (including retransmissions).
    pub unicasts: u64,
    /// Successful frame receptions dispatched to protocols.
    pub frames_delivered: u64,
    /// Receptions lost to collisions.
    pub corrupted: u64,
    /// Receptions lost because the destination slept or died mid-frame.
    pub missed_unreachable: u64,
    /// Unicast frames dropped after exhausting the retry budget.
    pub mac_drops: u64,
    /// Unicast retransmissions performed.
    pub retransmissions: u64,
    /// RAS pages transmitted.
    pub pages_sent: u64,
    /// Hosts woken by RAS pages.
    pub pages_woken: u64,
    /// Grid-boundary crossings observed.
    pub cell_crossings: u64,
    /// Hosts that ran out of battery.
    pub deaths: u64,
    /// Protocol timers fired.
    pub timers_fired: u64,
    /// Receptions destroyed by the injected fault channel.
    pub frames_lost_fault: u64,
    /// RAS pages lost to the injected fault channel.
    pub pages_lost_fault: u64,
    /// Injected node crashes.
    pub crashes: u64,
    /// Crashed nodes that rebooted and rejoined.
    pub rejoins: u64,
    /// Injected sudden battery drains.
    pub fault_drains: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = WorldStats::default();
        assert_eq!(s.tx_started, 0);
        assert_eq!(s.deaths, 0);
    }
}
