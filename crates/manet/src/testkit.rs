//! A minimal instrumented protocol for exercising the framework in tests,
//! benches and examples — not a routing protocol, just a probe.

use crate::ctx::{AppPacket, Ctx};
use crate::protocol::{Protocol, WireSize};
use geo::GridCoord;
use radio::{FrameKind, NodeId, PageSignal};
use sim_engine::SimDuration;

/// Probe messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ProbeMsg {
    /// An arbitrary tagged message with an explicit wire size.
    Tag { tag: u32, bytes: u32 },
    /// A data packet addressed to `dst` (single-hop).
    Data { packet: AppPacket, dst: NodeId },
}

impl WireSize for ProbeMsg {
    fn wire_bytes(&self) -> u32 {
        match self {
            ProbeMsg::Tag { bytes, .. } => *bytes,
            ProbeMsg::Data { packet, .. } => packet.bytes + 12,
        }
    }
}

/// Startup behaviour of a probe node.
#[derive(Clone, Debug, Default)]
pub struct ProbeCfg {
    /// Broadcast `Tag{tag, bytes}` at start.
    pub broadcast_at_start: Option<(u32, u32)>,
    /// Unicast `Tag{tag, bytes}` to a node at start.
    pub unicast_at_start: Option<(NodeId, u32, u32)>,
    /// Go to sleep immediately at start.
    pub sleep_at_start: bool,
    /// Arm a timer (delay secs, token) at start.
    pub timer_at_start: Option<(f64, u32)>,
    /// Page this host at start (RAS unicast page).
    pub page_host_at_start: Option<NodeId>,
    /// Page this grid at start (RAS broadcast page).
    pub page_grid_at_start: Option<GridCoord>,
}

/// The probe protocol: performs the configured startup actions and records
/// everything that happens to it.
#[derive(Clone, Debug, Default)]
pub struct Probe {
    pub cfg: ProbeCfg,
    /// (src, msg) of every received frame.
    pub heard: Vec<(NodeId, ProbeMsg)>,
    /// Every page that reached this host.
    pub pages: Vec<PageSignal>,
    /// Every observed grid crossing.
    pub cell_changes: Vec<(GridCoord, GridCoord)>,
    /// Destinations of unicasts the MAC gave up on.
    pub failed_unicasts: Vec<NodeId>,
    /// Tokens of fired timers.
    pub fired_timers: Vec<u32>,
    /// Data packets this node originated.
    pub sent_packets: Vec<AppPacket>,
    /// Data packets delivered to this node's application.
    pub delivered_packets: Vec<AppPacket>,
}

impl Probe {
    pub fn new(cfg: ProbeCfg) -> Self {
        Probe {
            cfg,
            ..Default::default()
        }
    }
}

impl Protocol for Probe {
    type Msg = ProbeMsg;
    type Timer = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        if let Some((delay, token)) = self.cfg.timer_at_start {
            ctx.set_timer(SimDuration::from_secs_f64(delay), token);
        }
        if let Some((tag, bytes)) = self.cfg.broadcast_at_start {
            ctx.broadcast(ProbeMsg::Tag { tag, bytes });
        }
        if let Some((dst, tag, bytes)) = self.cfg.unicast_at_start {
            ctx.unicast(dst, ProbeMsg::Tag { tag, bytes });
        }
        if let Some(target) = self.cfg.page_host_at_start {
            ctx.page_host(target);
        }
        if let Some(cell) = self.cfg.page_grid_at_start {
            ctx.page_grid(cell);
        }
        if self.cfg.sleep_at_start {
            ctx.sleep();
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, _kind: FrameKind, msg: &ProbeMsg) {
        self.heard.push((src, msg.clone()));
        if let ProbeMsg::Data { packet, dst } = msg {
            if *dst == ctx.id() {
                ctx.deliver_app(*packet);
                self.delivered_packets.push(*packet);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, timer: u32) {
        self.fired_timers.push(timer);
    }

    fn on_page(&mut self, _ctx: &mut Ctx<'_, Self>, signal: PageSignal) {
        self.pages.push(signal);
    }

    fn on_cell_change(&mut self, _ctx: &mut Ctx<'_, Self>, old: GridCoord, new: GridCoord) {
        self.cell_changes.push((old, new));
    }

    fn on_app_send(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, packet: AppPacket) {
        self.sent_packets.push(packet);
        ctx.unicast(dst, ProbeMsg::Data { packet, dst });
    }

    fn on_unicast_failed(&mut self, _ctx: &mut Ctx<'_, Self>, dst: NodeId, _msg: &ProbeMsg) {
        self.failed_unicasts.push(dst);
    }
}
