//! A lock-free progress probe the run loop updates as it goes.
//!
//! When a replica runs under a supervisor behind `catch_unwind`, a panic
//! destroys the [`World`](crate::world::World) and everything it knew.
//! The probe is the part that survives: an `Arc` of atomics shared with
//! the supervisor, updated on every dispatch, so a post-mortem can report
//! how far the run got (events dispatched, virtual time reached) and the
//! trace digest of the last completed sample window — enough to bisect a
//! crash against a healthy replay without any of the crashed state.

use sim_engine::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use trace::TraceDigest;

/// Shared progress counters for one run.  All loads/stores are `Relaxed`:
/// the probe is a monitoring side channel, not a synchronization point,
/// and single-field snapshots are exact enough for diagnostics.
#[derive(Debug, Default)]
pub struct ProgressProbe {
    events: AtomicU64,
    virtual_time_ns: AtomicU64,
    digest: AtomicU64,
    digest_valid: AtomicBool,
}

impl ProgressProbe {
    pub fn new() -> Self {
        Self::default()
    }

    /// Called by the run loop after each dispatch.
    #[inline]
    pub(crate) fn record(&self, events: u64, now: SimTime) {
        self.events.store(events, Ordering::Relaxed);
        self.virtual_time_ns.store(now.as_nanos(), Ordering::Relaxed);
    }

    /// Called at sample boundaries when a trace recorder is attached.
    #[inline]
    pub(crate) fn record_digest(&self, d: TraceDigest) {
        self.digest.store(d.0, Ordering::Relaxed);
        self.digest_valid.store(true, Ordering::Relaxed);
    }

    /// Events dispatched so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Virtual time the run had reached.
    pub fn virtual_time(&self) -> SimTime {
        SimTime(self.virtual_time_ns.load(Ordering::Relaxed))
    }

    /// Digest of the trace as of the last sample boundary (`None` until
    /// the first sample, or when the run records no trace).
    pub fn partial_digest(&self) -> Option<TraceDigest> {
        if self.digest_valid.load(Ordering::Relaxed) {
            Some(TraceDigest(self.digest.load(Ordering::Relaxed)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_blank() {
        let p = ProgressProbe::new();
        assert_eq!(p.events(), 0);
        assert_eq!(p.virtual_time(), SimTime::ZERO);
        assert!(p.partial_digest().is_none());
    }

    #[test]
    fn records_are_visible() {
        let p = ProgressProbe::new();
        p.record(42, SimTime::from_secs(7));
        p.record_digest(TraceDigest(0xdead_beef));
        assert_eq!(p.events(), 42);
        assert_eq!(p.virtual_time(), SimTime::from_secs(7));
        assert_eq!(p.partial_digest(), Some(TraceDigest(0xdead_beef)));
    }
}
