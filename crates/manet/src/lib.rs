//! The MANET simulation framework — the glue between the discrete-event
//! engine, the radio substrate, mobility, energy, traffic, and the routing
//! protocols under study.
//!
//! A [`World`] owns a population of hosts.  Each host runs a
//! [`Protocol`] — GRID, ECGRID, GAF, AODV, or anything else implementing
//! the trait — and the World drives it with callbacks:
//!
//! * `on_start` once at t=0;
//! * `on_frame` for every successfully received frame;
//! * `on_timer` for protocol timers;
//! * `on_page` when the RAS paging receiver wakes the host;
//! * `on_cell_change` when an *awake* host's GPS observes a grid crossing
//!   (sleeping hosts only learn their position when their own dwell timer
//!   wakes them — exactly the paper's semantics);
//! * `on_app_send` when the host's CBR application emits a packet;
//! * `on_unicast_failed` when the MAC exhausts its retransmission budget
//!   (how a host discovers its gateway is gone, §3.2 case 2).
//!
//! Protocols react through the [`Ctx`] command interface: send frames,
//! sleep/wake, page hosts or grids, set timers, deliver application
//! packets.  All effects are applied after the callback returns, which
//! keeps borrow discipline simple and the event order deterministic.
//!
//! The World implements a CSMA/CA MAC over the unit-disc channel (carrier
//! sense, binary exponential backoff, receiver-side collision corruption,
//! ACK + bounded retransmit for unicasts), integrates every host's energy
//! meter through the radio-mode transitions, and samples the alive
//! fraction and *aen* series the paper plots.
//!
//! Observability lives in the `trace` crate (re-exported here): enable a
//! [`trace::Recorder`] on the World to capture a typed, digestable event
//! stream across every layer (MAC, radio, energy, RAS, routing, app).

pub mod config;
pub mod ctx;
pub mod progress;
pub mod protocol;
pub mod stats;
pub mod testkit;
pub mod world;

pub use config::{host_parallelism, HostSetup, WorldConfig};
pub use ctx::{AppPacket, Ctx, NodeView, TimerId};
pub use progress::ProgressProbe;
pub use protocol::{Protocol, WireSize};
pub use stats::WorldStats;
pub use trace::{render_trace, Event, EventKind, Recorder, TraceDigest, TraceMode};
pub use world::{GroupStats, RunOutput, ShardStats, World};

/// The observability layer (events, recorder, digest, registry, profile).
pub use trace;

/// The fault-injection layer (deterministic adversity schedules).
pub use fault;
pub use fault::{FaultCtl, FaultPlan, GilbertElliott};

// Re-export the vocabulary types protocols need, so protocol crates can
// depend on `manet` alone.
pub use energy::{Battery, EnergyAudit, EnergyLevel, EnergyMeter, PowerProfile, RadioMode};
pub use geo::{GridCoord, GridMap, GridRect, Point2, Vec2};
pub use radio::{
    auto_gather_threshold, FrameKind, GatherFallback, MacConfig, NeighborIndex, NodeId, PageSignal,
    RasConfig, SpatialIndex,
};
pub use sim_engine::{Backend, BudgetExceeded, RunBudget, SimDuration, SimTime};

/// Re-export of the whole engine crate (deterministic RNG streams etc.)
/// so protocol crates and tests don't need a separate dependency.
pub use sim_engine;
pub use traffic::{CbrFlow, FlowId, FlowSet, FlowSpec};
