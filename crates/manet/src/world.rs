//! The simulation world: event loop, CSMA/CA MAC, RAS paging, traffic
//! injection, energy bookkeeping, and metric sampling.

use crate::config::{HostSetup, WorldConfig};
use crate::ctx::{AppPacket, Cmd, Ctx, NodeView, TimerId};
use crate::progress::ProgressProbe;
use crate::protocol::{Protocol, WireSize};
use crate::stats::WorldStats;
use energy::{Battery, EnergyLevel, EnergyMeter, RadioMode};
use fault::FaultCtl;
use geo::{GridCoord, Point2, Vec2};
use metrics::{PacketLedger, TimeSeries};
use mobility::MobilityTrace;
use radio::frame::FrameMeta;
use radio::{
    auto_gather_threshold, ChannelState, FrameKind, GatherFallback, NeighborIndex, NodeId, PageSignal,
    ShardMap, ShardedChannel, SpatialIndex,
};
use rand::rngs::StdRng;
use rand::Rng;
use sim_engine::{
    chunk_count, derive_seed, BudgetExceeded, EventHandle, Mailbox, RngFactory, Scheduler, ShardedScheduler,
    SimDuration, SimTime, SlicePtr, SplitMix64, WorkerPool,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use trace::{Event as TraceEvent, EventKind, FaultKind, Recorder, TraceDigest, TraceMode};

/// How long ended transmissions are kept for collision back-checks.
const CHANNEL_GC_GRACE: SimDuration = SimDuration(50_000_000); // 50 ms

/// Scenario per-group GPS error: offset `(dx, dy)` in meters for `node`
/// at `t_ns`, piecewise constant over 1 s (a consumer-GPS fix rate).
/// Stateless hash draws keyed on the world seed — `sigma == 0` performs
/// no draws, so scenario-free runs stay digest-identical; distinct domain
/// labels keep it independent of the fault plan's own GPS stream.
fn scenario_gps_offset(seed: u64, node: u32, sigma_m: f64, t_ns: u64) -> (f64, f64) {
    if sigma_m <= 0.0 {
        return (0.0, 0.0);
    }
    let slot = t_ns / 1_000_000_000;
    let draw = |domain: &str| {
        SplitMix64::new(derive_seed(
            derive_seed(seed, domain, node as u64),
            "scenario.sub",
            slot,
        ))
        .next_f64()
    };
    let r = sigma_m * draw("scenario.gps_r");
    let theta = std::f64::consts::TAU * draw("scenario.gps_a");
    (r * theta.cos(), r * theta.sin())
}

/// Epoch-barrier maintenance cadence of the sharded engine (sim time):
/// per-shard channel gc runs when the merged clock crosses this stride,
/// instead of twice per transmission like the serial channel.  Retaining
/// ended transmissions longer is invisible to results — carrier-sense and
/// collision checks filter candidates by time — so the cadence is purely
/// a memory/scan-length trade (a quarter of the gc grace keeps per-shard
/// in-flight lists within ~2x of the serial channel's).
const SHARD_GC_STRIDE: SimDuration = SimDuration(CHANNEL_GC_GRACE.0 / 4);

/// Interface queue depth (frames); the tail is dropped beyond this.
const MAC_QUEUE_CAP: usize = 128;

/// Minimum item count before a host-plane kernel fans out over the
/// worker pool; below this the original serial loop runs unchanged.
/// The threshold trades fork–join latency against per-item work — and
/// because chunk layout only partitions *where* slot/lane outputs are
/// written, never their merge order, it cannot affect results.
const PAR_MIN_ITEMS: usize = 96;

/// Chunk size for a parallel section: large enough to amortize handoff,
/// small enough that `threads * 4` chunks exist for load balance.
fn par_grain(n: usize, threads: usize) -> usize {
    (n / (threads.max(1) * 4)).clamp(64, 4096)
}

/// Phase-1 output of a probe kernel, posted to the barrier mailbox only
/// for *notable* hosts (battery class changed, died, or page-addressed);
/// unremarkable hosts need no serial commit at all, exactly as their
/// serial `touch` would have been observably inert.
#[derive(Clone, Copy)]
struct ProbeMsg {
    node: u32,
    /// `Some` iff a recorder is attached (mirrors `touch`'s level gate).
    level: Option<EnergyLevel>,
    alive: bool,
    /// Page kernel only: alive, inside paging range, and addressed.
    hit: bool,
}

/// Phase-1 output of the tx-end receiver kernel, one dense slot per
/// frozen receiver: the serial commit loop interleaves emissions per
/// receiver, so every receiver needs its verdict addressable by index
/// (a mailbox's notable-only stream would not line up).
#[derive(Clone, Copy, Default)]
struct TxProbe {
    level: Option<EnergyLevel>,
    alive: bool,
    /// Collision verdict from the channel, valid whenever the receiver
    /// could still hear the frame (pure query; computed unconditionally).
    corrupt: bool,
}

#[derive(Debug)]
enum Event {
    /// The node's MAC attempts to put its head-of-queue frame on the air.
    MacTryTx { node: NodeId },
    /// Transmission `tx_id` by `node` leaves the air; deliver receptions.
    TxEnd { node: NodeId, tx_id: u64 },
    /// The implicit ACK exchange for the node's last unicast concluded.
    AckDone { node: NodeId, ok: bool },
    /// Protocol timer `id` fires.
    Timer { node: NodeId, id: u64 },
    /// A RAS page transmitted from `origin` arrives at its addressees.
    Page { signal: PageSignal, origin: Point2 },
    /// `node`'s trajectory crosses a grid boundary.
    CellCrossing { node: NodeId },
    /// Flow `flow_idx` emits packet `seq`.
    AppSend { flow_idx: usize, seq: u64 },
    /// Metrics sampling tick.
    Sample,
    /// The fault plan crashes `node` (its `k`-th crash).
    FaultCrash { node: NodeId, k: u64 },
    /// A crashed `node` reboots; its next crash is the `k`-th.
    FaultRejoin { node: NodeId, k: u64 },
    /// The fault plan drains `node`'s battery (its `k`-th drain).
    FaultDrain { node: NodeId, k: u64 },
    /// Sentinel terminating `run_until`.
    EndOfRun,
}

impl Event {
    /// Scheduler-profiling domain of this event.
    fn domain(&self) -> &'static str {
        match self {
            Event::MacTryTx { .. } => "mac_try_tx",
            Event::TxEnd { .. } => "tx_end",
            Event::AckDone { .. } => "ack_done",
            Event::Timer { .. } => "timer",
            Event::Page { .. } => "page",
            Event::CellCrossing { .. } => "cell_crossing",
            Event::AppSend { .. } => "app_send",
            Event::Sample => "sample",
            Event::FaultCrash { .. } => "fault_crash",
            Event::FaultRejoin { .. } => "fault_rejoin",
            Event::FaultDrain { .. } => "fault_drain",
            Event::EndOfRun => "end_of_run",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MacPhase {
    /// Nothing queued.
    Idle,
    /// A MacTryTx is scheduled for the head-of-queue frame.
    WaitTry,
    /// A frame is on the air.
    Transmitting(u64),
    /// Unicast sent; waiting for the ACK verdict.
    AwaitAck(u64),
}

struct OutFrame<M> {
    kind: FrameKind,
    msg: M,
    bytes: u32,
}

struct Mac<M> {
    queue: VecDeque<OutFrame<M>>,
    phase: MacPhase,
    attempt: u32,
}

impl<M> Default for Mac<M> {
    fn default() -> Self {
        Mac {
            queue: VecDeque::new(),
            phase: MacPhase::Idle,
            attempt: 0,
        }
    }
}

/// A transmission in flight, with its receiver set frozen at tx start
/// (hosts that wake mid-frame missed the preamble and cannot receive it).
struct Flight<M> {
    src: NodeId,
    kind: FrameKind,
    msg: M,
    start: SimTime,
    end: SimTime,
    receivers: Vec<NodeId>,
}

/// The event engine behind the world: the historical serial scheduler, or
/// the sharded conservative-sync engine (`--parallel-world`).  Every
/// `schedule_*` call names a target shard; the serial arm ignores it, the
/// sharded arm files the event in that shard's queue.  Dispatch order is
/// identical either way — the sharded merge pops in global
/// `(time, queue_seq, shard_id)` order, which `sim_engine::shard` proves
/// equal to the single queue's `(time, seq)` order — so every handler,
/// RNG draw, and trace emission replays bit-for-bit
/// (`tests/parallel_equivalence.rs`).
enum WorldSched {
    Serial(Scheduler<Event>),
    Sharded(ShardedScheduler<Event>),
}

impl WorldSched {
    #[inline]
    fn now(&self) -> SimTime {
        match self {
            WorldSched::Serial(s) => s.now(),
            WorldSched::Sharded(s) => s.now(),
        }
    }

    #[inline]
    fn processed(&self) -> u64 {
        match self {
            WorldSched::Serial(s) => s.processed(),
            WorldSched::Sharded(s) => s.processed(),
        }
    }

    #[inline]
    fn pending(&self) -> usize {
        match self {
            WorldSched::Serial(s) => s.pending(),
            WorldSched::Sharded(s) => s.pending(),
        }
    }

    #[inline]
    fn check_budget(&self) -> Result<(), BudgetExceeded> {
        match self {
            WorldSched::Serial(s) => s.check_budget(),
            WorldSched::Sharded(s) => s.check_budget(),
        }
    }

    fn pool_stats(&self) -> sim_engine::PoolStats {
        match self {
            WorldSched::Serial(s) => s.pool_stats(),
            WorldSched::Sharded(s) => s.pool_stats(),
        }
    }

    fn reserve_events(&mut self, additional: usize) {
        match self {
            WorldSched::Serial(s) => s.reserve_events(additional),
            WorldSched::Sharded(s) => s.reserve_events(additional),
        }
    }

    #[inline]
    fn schedule_at(&mut self, shard: usize, at: SimTime, ev: Event) -> EventHandle {
        match self {
            WorldSched::Serial(s) => s.schedule_at(at, ev),
            WorldSched::Sharded(s) => s.schedule_at(shard, at, ev),
        }
    }

    #[inline]
    fn schedule_in(&mut self, shard: usize, delay: SimDuration, ev: Event) -> EventHandle {
        match self {
            WorldSched::Serial(s) => s.schedule_in(delay, ev),
            WorldSched::Sharded(s) => s.schedule_in(shard, delay, ev),
        }
    }

    #[inline]
    fn cancel(&mut self, h: EventHandle) {
        match self {
            WorldSched::Serial(s) => s.cancel(h),
            WorldSched::Sharded(s) => s.cancel(h),
        }
    }

    #[inline]
    fn next(&mut self) -> Option<(SimTime, Event)> {
        match self {
            WorldSched::Serial(s) => s.next(),
            WorldSched::Sharded(s) => s.next(),
        }
    }
}

/// The channel behind the world: one global in-flight set (serial), or
/// per-shard sets with boundary mirrors (`--parallel-world`).  Queries
/// name the shard they are issued from; the serial arm ignores it.
enum WorldChannel {
    Serial(ChannelState),
    Sharded(ShardedChannel),
}

impl WorldChannel {
    #[inline]
    fn busy_until(&self, shard: usize, p: Point2, at: SimTime) -> Option<SimTime> {
        match self {
            WorldChannel::Serial(c) => c.busy_until(p, at),
            WorldChannel::Sharded(c) => c.busy_until(shard, p, at),
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn begin_tx(
        &mut self,
        shard: usize,
        src: NodeId,
        origin: Point2,
        range: f64,
        start: SimTime,
        end: SimTime,
    ) -> u64 {
        match self {
            WorldChannel::Serial(c) => c.begin_tx(src, origin, range, start, end),
            WorldChannel::Sharded(c) => c.begin_tx(shard, src, origin, range, start, end),
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn corrupted(
        &self,
        shard: usize,
        tx_id: u64,
        src_origin: Point2,
        receiver: Point2,
        start: SimTime,
        end: SimTime,
    ) -> bool {
        match self {
            WorldChannel::Serial(c) => c.corrupted(tx_id, src_origin, receiver, start, end),
            WorldChannel::Sharded(c) => c.corrupted(shard, tx_id, src_origin, receiver, start, end),
        }
    }

    /// The serial channel's historical per-transmission gc.  The sharded
    /// channel skips it — ended entries are pruned at epoch barriers
    /// instead, which is invisible to query results (both `busy_until`
    /// and `corrupted` filter candidates by time, so entries retained
    /// longer never change an answer) but removes the dominant
    /// per-transmission cost at scale: the gc's index rebuild.
    #[inline]
    fn gc_tx_path(&mut self, before: SimTime) {
        match self {
            WorldChannel::Serial(c) => c.gc_before(before),
            WorldChannel::Sharded(_) => {}
        }
    }

    /// Epoch-barrier maintenance: prune every shard channel.
    fn gc_barrier(&mut self, before: SimTime) {
        match self {
            WorldChannel::Serial(c) => c.gc_before(before),
            WorldChannel::Sharded(c) => c.gc_before(before),
        }
    }

    /// Lifetime boundary-mirror insertions (0 for the serial channel).
    fn mirrored(&self) -> u64 {
        match self {
            WorldChannel::Serial(_) => 0,
            WorldChannel::Sharded(c) => c.mirrored(),
        }
    }
}

/// Shard bookkeeping of a parallel world: the strip partition, per-shard
/// host membership, and barrier/migration counters.  Ownership of a host
/// is a *function* of its maintained grid cell (`ShardMap::shard_of_col`)
/// plus these membership counts — the SoA columns stay dense and
/// id-indexed, because every hot loop (receiver gather, energy folds)
/// iterates them in ascending-id order, and physically splitting the
/// columns per shard would force a K-way merge on exactly those loops.
/// Migration between shards is therefore O(1): a counter move when a
/// cell-crossing event lands in a different strip.
struct ShardRuntime {
    map: ShardMap,
    /// Live (not dead-handled) hosts per shard.
    members: Vec<u32>,
    /// Conservative lookahead bounding an epoch: the smallest interval
    /// the MAC or RAS can react across (min of SIFS, slot, DIFS, and the
    /// RAS wake latency).  Barrier maintenance runs every
    /// `max(lookahead, SHARD_GC_STRIDE)` of virtual time.
    stride: SimDuration,
    next_gc: SimTime,
    migrations: u64,
    barriers: u64,
}

/// Diagnostic counters of a parallel world (see [`World::shard_stats`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard count K.
    pub shards: usize,
    /// Worker-lane count T of the host-plane kernels (1 = inline).
    pub threads: usize,
    /// Live hosts currently owned by each shard.
    pub members: Vec<u32>,
    /// Cell crossings that moved a host between shards.
    pub migrations: u64,
    /// Epoch barriers taken (gc maintenance points).
    pub barriers: u64,
    /// Boundary transmissions mirrored into neighbor shards.
    pub mirrored_tx: u64,
}

/// Host state in struct-of-arrays layout: one dense parallel array per
/// field, indexed by `NodeId`.  The hot loops — receiver gather, the
/// brute candidate scan, energy ticks, the alive/aen folds — each touch
/// exactly the arrays they need (`cells` + `dead_handled`, or `meters`)
/// as branch-light linear scans, instead of striding over full per-node
/// records the way the old `Vec<NodeState>` layout forced.
///
/// Radio mode and battery charge deliberately stay *inside* the meter row
/// rather than getting mirror arrays: `drain_direct` can latch a host
/// `Off` mid-handler, and a cached mode/level copy would desynchronize
/// silently.  The meter row is the single source of truth; the per-host
/// level *class* cache (`last_levels`) exists only to detect boundary
/// crossings and is updated at every touch.
struct Hosts<P: Protocol> {
    protos: Vec<P>,
    meters: Vec<EnergyMeter>,
    traces: Vec<MobilityTrace>,
    /// Maintained grid cell (bucket coordinate) per host.
    cells: Vec<GridCoord>,
    rngs: Vec<StdRng>,
    /// Battery level class as last observed by the trace layer (detects
    /// class-boundary crossings in `touch`).
    last_levels: Vec<EnergyLevel>,
    macs: Vec<Mac<P::Msg>>,
    /// Number of concurrent receptions in progress (radio in Rx while > 0).
    rx_refs: Vec<u32>,
    /// The protocol asked to sleep while the MAC was mid-exchange; applied
    /// as soon as the exchange concludes.
    sleep_pending: Vec<bool>,
    dead_handled: Vec<bool>,
    /// Crashed by the fault plan: silent (radio down, protocol frozen)
    /// until the scheduled rejoin reboots it with fresh protocol state.
    crashed: Vec<bool>,
    /// Per-host radio range in meters (`WorldConfig::range_m` unless the
    /// scenario overrides it; never exceeds the channel's construction
    /// maximum).
    ranges: Vec<f64>,
    /// Per-host GPS error sigma in meters (0 = exact positions, no draws).
    gps_sigmas: Vec<f64>,
    /// Scenario group index per host (0 outside scenario runs).
    groups: Vec<u16>,
}

impl<P: Protocol> Hosts<P> {
    fn with_capacity(n: usize) -> Self {
        Hosts {
            protos: Vec::with_capacity(n),
            meters: Vec::with_capacity(n),
            traces: Vec::with_capacity(n),
            cells: Vec::with_capacity(n),
            rngs: Vec::with_capacity(n),
            last_levels: Vec::with_capacity(n),
            macs: Vec::with_capacity(n),
            rx_refs: Vec::with_capacity(n),
            sleep_pending: Vec::with_capacity(n),
            dead_handled: Vec::with_capacity(n),
            crashed: Vec::with_capacity(n),
            ranges: Vec::with_capacity(n),
            gps_sigmas: Vec::with_capacity(n),
            groups: Vec::with_capacity(n),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        proto: P,
        meter: EnergyMeter,
        trace: MobilityTrace,
        cell: GridCoord,
        rng: StdRng,
        range_m: f64,
        gps_sigma_m: f64,
        group: u16,
    ) {
        let level = meter.level();
        self.protos.push(proto);
        self.meters.push(meter);
        self.traces.push(trace);
        self.cells.push(cell);
        self.rngs.push(rng);
        self.last_levels.push(level);
        self.macs.push(Mac::default());
        self.rx_refs.push(0);
        self.sleep_pending.push(false);
        self.dead_handled.push(false);
        self.crashed.push(false);
        self.ranges.push(range_m);
        self.gps_sigmas.push(gps_sigma_m);
        self.groups.push(group);
    }

    #[inline]
    fn len(&self) -> usize {
        self.meters.len()
    }
}

/// Per-scenario-group liveness/energy rollup (see [`World::group_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GroupStats {
    /// Hosts tagged with this group (including infinite-battery ones).
    pub hosts: u32,
    /// Finite-battery hosts in the group.
    pub finite: u32,
    /// Finite-battery hosts currently alive.
    pub alive: u32,
    /// Energy consumed by the group's finite-battery hosts (J).
    pub consumed_j: f64,
    /// Total initial energy of the group's finite-battery hosts (J).
    pub capacity_j: f64,
}

impl GroupStats {
    /// Alive fraction over finite hosts (1.0 for an all-infinite group).
    pub fn alive_fraction(&self) -> f64 {
        if self.finite == 0 {
            1.0
        } else {
            f64::from(self.alive) / f64::from(self.finite)
        }
    }

    /// Normalized energy consumption (Eq. 2 restricted to the group).
    pub fn aen(&self) -> f64 {
        if self.capacity_j == 0.0 {
            0.0
        } else {
            self.consumed_j / self.capacity_j
        }
    }
}

/// The results of a finished run.
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// Fraction of finite-battery hosts still alive, sampled over time.
    pub alive: TimeSeries,
    /// Mean normalized energy consumption (aen, Eq. 2) over time.
    pub aen: TimeSeries,
    /// Per-packet delivery accounting.
    pub ledger: PacketLedger,
    /// Frame/event counters.
    pub stats: WorldStats,
    /// `Some` when the run was cut short by the configured
    /// [`RunBudget`](sim_engine::RunBudget) instead of reaching its end
    /// time — the watchdog fired.  Metrics above cover the truncated run.
    pub budget_exceeded: Option<BudgetExceeded>,
}

/// The simulation world.  See module docs.
pub struct World<P: Protocol> {
    cfg: WorldConfig,
    hosts: Hosts<P>,
    sched: WorldSched,
    channel: WorldChannel,
    /// `Some` iff running the sharded conservative-sync engine.
    shards: Option<ShardRuntime>,
    flights: HashMap<u64, Flight<P::Msg>>,
    flows: traffic::FlowSet,
    ledger: PacketLedger,
    alive_series: TimeSeries,
    aen_series: TimeSeries,
    stats: WorldStats,
    timers: HashMap<u64, (NodeId, P::Timer, EventHandle)>,
    next_timer_id: u64,
    /// Fault-plan runtime (no-op when the plan is all-zero).
    fault: FaultCtl,
    /// Kept for fault-plan rejoins: a rebooted host restarts with a fresh
    /// protocol instance, exactly as at t=0.
    factory: Box<dyn FnMut(NodeId) -> P>,
    trace_log: Option<Vec<(SimTime, NodeId, String)>>,
    recorder: Option<Recorder>,
    /// Spatial index over node cells, bucket-aligned with `cfg.grid` and
    /// maintained incrementally: O(1) moves on cell-crossing events, dead
    /// hosts pruned on death (their touch is observably inert, so pruning
    /// cannot shift the trace).  Receiver scans visit only the cells a
    /// transmission can reach instead of every node.  Maintained in both
    /// query modes — only `nodes_near` consults `cfg.neighbor_index`.
    index: SpatialIndex,
    /// Chebyshev cell radius a radio signal can span.
    reach_cells: i32,
    /// Live population at or below which `GatherFallback::Auto` brute-scans
    /// (see [`auto_gather_threshold`]).
    auto_threshold: usize,
    /// Scratch candidate buffer for receiver discovery — reused across
    /// queries so the hot path never allocates.
    gather_buf: Vec<u32>,
    /// Recycled receiver vectors for `Flight`s (returned at tx end).
    recv_pool: Vec<Vec<NodeId>>,
    /// Scratch success list for `tx_end`.
    succ_buf: Vec<NodeId>,
    /// Worker pool of the threaded engine (`parallel_world` with
    /// `threads > 1`); `None` runs every host-plane kernel inline.
    exec: Option<WorkerPool>,
    /// Resolved worker-lane count (1 on the serial engine).
    threads: usize,
    /// Barrier mailbox of the probe kernels: phase 1 posts notable hosts
    /// into chunk-owned lanes, the commit phase drains them in lane
    /// order — which is ascending-id order, the serial loops' order.
    probe_mail: Mailbox<ProbeMsg>,
    /// Drained-message scratch (reused; the commit loop needs `&mut self`).
    probe_msgs: Vec<ProbeMsg>,
    /// Per-candidate receiver verdicts of the tx-freeze kernel.
    freeze_flags: Vec<bool>,
    /// Per-receiver verdicts of the tx-end kernel.
    txend_slots: Vec<TxProbe>,
    started: bool,
    /// Supervisor-shared progress counters (see [`ProgressProbe`]).
    probe: Option<Arc<ProgressProbe>>,
    /// Set when the run loop stopped on the configured budget.
    budget_exceeded: Option<BudgetExceeded>,
}

impl<P: Protocol> World<P> {
    /// Build a world.  `factory` constructs the protocol instance for each
    /// host (hosts are numbered `NodeId(0..hosts.len())`).
    pub fn new(
        cfg: WorldConfig,
        hosts: Vec<HostSetup>,
        flows: traffic::FlowSet,
        mut factory: impl FnMut(NodeId) -> P + 'static,
    ) -> Self {
        assert!(!hosts.is_empty(), "a world needs hosts");
        let rngs = RngFactory::new(cfg.seed);
        let n_hosts = hosts.len();
        // Auto-parallelism: shards == 0 / threads == 0 resolve against the
        // host here, once, so every downstream consumer (stats, metadata
        // echoes) reports the values actually in effect.
        let k_shards = cfg.resolved_shards().max(1);
        let threads = cfg.resolved_threads().max(1);
        let exec = (cfg.parallel_world && threads > 1).then(|| WorkerPool::new(threads));
        // Heterogeneous fleets: the channel's geometry (bucket side,
        // mirror slack, reach radius) is sized from the LARGEST radio in
        // the fleet, so every per-transmission disc fits inside the 3x3
        // bucket query and every boundary mirror predicate.  A homogeneous
        // fleet reduces to exactly `cfg.range_m`, leaving digests
        // untouched.
        let max_range = hosts.iter().fold(cfg.range_m, |acc, h| {
            let r = h.range_m.unwrap_or(cfg.range_m);
            assert!(
                r.is_finite() && r > 0.0,
                "host radio range must be positive and finite, got {r}"
            );
            acc.max(r)
        });
        let reach_cells = (max_range / cfg.grid.cell_side()).ceil() as i32 + 1;
        // Bucketed carrier-sense/interference queries ride the same
        // toggle as receiver discovery, so `brute` really is the
        // end-to-end baseline.  Small populations skip the bucket
        // structure entirely: their in-flight set is small enough that
        // the channel's own linear-scan cutoff would ignore the
        // buckets anyway, leaving per-transmission maintenance as pure
        // overhead (the historical N ≤ 200 regression).  Presence or
        // absence of the index never changes a verdict, only its cost.
        let channel_spatial =
            cfg.neighbor_index == NeighborIndex::Grid && n_hosts > auto_gather_threshold(reach_cells);
        let channel = if cfg.parallel_world {
            let map = ShardMap::new(
                cfg.grid.cells_x().max(1) as usize,
                cfg.grid.cell_side(),
                cfg.grid.width(),
                k_shards,
            );
            let mut ch = ShardedChannel::new(max_range, map);
            ch.set_capture_ratio(cfg.capture_ratio);
            if channel_spatial {
                ch.enable_spatial(cfg.grid.width(), cfg.grid.height());
            }
            WorldChannel::Sharded(ch)
        } else {
            let mut ch = ChannelState::new(max_range);
            ch.set_capture_ratio(cfg.capture_ratio);
            if channel_spatial {
                ch.enable_spatial(cfg.grid.width(), cfg.grid.height());
            }
            WorldChannel::Serial(ch)
        };
        // Buckets coincide with the paper's logical grid cells: the
        // per-node cell is already maintained by cell-crossing events, so
        // index maintenance is free — and candidate sets are identical to
        // the historical per-cell occupancy lists.
        let mut index =
            SpatialIndex::with_buckets(cfg.grid.cells_x(), cfg.grid.cells_y(), cfg.grid.cell_side());
        let fault = FaultCtl::new(cfg.faults, hosts.len());
        let mut soa = Hosts::with_capacity(n_hosts);
        for (i, h) in hosts.into_iter().enumerate() {
            let id = NodeId(i as u32);
            let cell = cfg.grid.cell_of(h.trace.position_at(SimTime::ZERO));
            index.insert(id.0, cell.x, cell.y);
            // fault-plan battery variance: manufacturing spread across
            // the finite batteries (infinite endpoints stay infinite)
            let battery = if cfg.faults.battery_var > 0.0 && !h.battery.is_infinite() {
                Battery::with_capacity(h.battery.capacity_j() * fault.battery_scale(id.0))
            } else {
                h.battery
            };
            let meter = EnergyMeter::new(h.profile, battery);
            soa.push(
                factory(id),
                meter,
                h.trace,
                cell,
                rngs.stream("node", i as u64),
                h.range_m.unwrap_or(cfg.range_m),
                h.gps_sigma_m,
                h.group,
            );
        }
        // Pre-size the event slab to the measured shape of paper-scale
        // runs: SchedProfile high-water marks sit near 2 pending events
        // per host (cell crossing + one MAC/timer each) plus flow and
        // bookkeeping heads.  4n + 64 covers every profiled scenario with
        // slack; the slab still grows on demand if a run out-paces it.
        // (The sharded engine reserves that much *per shard* — any one
        // shard can transiently hold most of the pending set.)
        let mut sched = if cfg.parallel_world {
            // The backend knob is inert here: shard queues are binary
            // heaps keyed (time, global_seq).  Dispatch order is the same
            // contract either backend honors, so nothing observable
            // depends on the difference.
            let mut s = ShardedScheduler::new(k_shards);
            s.set_budget(cfg.budget);
            WorldSched::Sharded(s)
        } else {
            let mut s = Scheduler::with_backend(cfg.backend);
            s.set_budget(cfg.budget);
            WorldSched::Serial(s)
        };
        sched.reserve_events(4 * n_hosts + 64);
        let shards = if cfg.parallel_world {
            let map = ShardMap::new(
                cfg.grid.cells_x().max(1) as usize,
                cfg.grid.cell_side(),
                cfg.grid.width(),
                k_shards,
            );
            let mut members = vec![0u32; map.shard_count()];
            for c in &soa.cells {
                members[map.shard_of_col(c.x)] += 1;
            }
            let lookahead = cfg
                .mac
                .sifs
                .min(cfg.mac.slot)
                .min(cfg.mac.difs)
                .min(cfg.ras.wake_latency);
            let stride = lookahead.max(SHARD_GC_STRIDE);
            Some(ShardRuntime {
                map,
                members,
                stride,
                next_gc: SimTime::ZERO + stride,
                migrations: 0,
                barriers: 0,
            })
        } else {
            None
        };
        World {
            cfg,
            hosts: soa,
            sched,
            channel,
            shards,
            flights: HashMap::new(),
            flows,
            ledger: PacketLedger::new(),
            alive_series: TimeSeries::new(),
            aen_series: TimeSeries::new(),
            stats: WorldStats::default(),
            timers: HashMap::new(),
            next_timer_id: 0,
            fault,
            factory: Box::new(factory),
            trace_log: None,
            recorder: None,
            index,
            reach_cells,
            auto_threshold: auto_gather_threshold(reach_cells),
            gather_buf: Vec::new(),
            recv_pool: Vec::new(),
            succ_buf: Vec::new(),
            exec,
            threads,
            probe_mail: Mailbox::new(),
            probe_msgs: Vec::new(),
            freeze_flags: Vec::new(),
            txend_slots: Vec::new(),
            started: false,
            probe: None,
            budget_exceeded: None,
        }
    }

    /// Fill `out` with the ids of nodes whose current (maintained) cell
    /// lies within radio reach of `cell`, in ascending id order.  `out` is
    /// cleared first; the caller reuses it so the hot path never allocates.
    ///
    /// This is the iteration-order contract every query path must honor:
    /// same membership (every non-dead host, at the cell its last crossing
    /// event recorded), same order (ascending id), so every downstream
    /// touch — and therefore every energy integration step and trace event
    /// — happens identically whichever path answered the query.  Because
    /// the lists are bit-identical, `GatherFallback::Auto` may flip
    /// between paths per query without perturbing the digest.
    fn fill_candidates(&self, cell: GridCoord, out: &mut Vec<u32>) {
        let brute = match self.cfg.neighbor_index {
            NeighborIndex::Brute => true,
            NeighborIndex::Grid => match self.cfg.gather_fallback {
                GatherFallback::On => true,
                GatherFallback::Off => false,
                // At low occupancy the fixed per-bucket cost of the gather
                // exceeds a branch-light scan of the cells array; the index
                // mirrors `!dead_handled` exactly, so its population is the
                // number of scan hits the brute path can see.
                GatherFallback::Auto => self.index.len() <= self.auto_threshold,
            },
        };
        if brute {
            // Reference scan: every index member is a node with
            // `dead_handled == false`, and its bucket is its maintained
            // `cell` field — reproduce exactly that, the O(N) way, over
            // two dense arrays.
            out.clear();
            let r = self.reach_cells;
            for (j, c) in self.hosts.cells.iter().enumerate() {
                if !self.hosts.dead_handled[j] && c.chebyshev(cell) <= r {
                    out.push(j as u32);
                }
            }
        } else {
            self.index
                .gather_sorted_into(cell.x, cell.y, self.reach_cells, out);
        }
    }

    /// Receiver discovery at `cell`, via whichever neighbor-query mode the
    /// config selects: the ascending-id list of live hosts whose maintained
    /// grid cell is within radio reach.  This is the simulator's hot-path
    /// query, exposed for tools and the scaling benchmarks.
    pub fn neighbors_of(&self, cell: GridCoord) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.fill_candidates(cell, &mut out);
        out.into_iter().map(NodeId).collect()
    }

    /// Record `ctx.note` lines and system events for walkthroughs/tests.
    pub fn enable_tracing(&mut self) {
        self.trace_log = Some(Vec::new());
    }

    /// Attach a structured event recorder (see the `trace` crate).  In
    /// [`TraceMode::DigestOnly`] only the canonical digest is maintained
    /// (O(1) memory); in [`TraceMode::Full`] every event is also buffered
    /// — long dense runs produce millions of events, so buffer only for
    /// focused scenarios and exports.
    pub fn enable_trace(&mut self, mode: TraceMode) {
        self.recorder = Some(Recorder::new(mode));
    }

    /// Convenience: full (buffered) event tracing.
    pub fn enable_event_trace(&mut self) {
        self.enable_trace(TraceMode::Full);
    }

    /// [`World::enable_trace`] with a live event tap: `sink` sees every
    /// event in recording order, from this thread, as the run proceeds.
    /// The sweep service streams from here; the sink must never block
    /// (hand off to a bounded drop-counting buffer instead).  Digest,
    /// buffer and profile behave exactly as without a sink.
    pub fn enable_trace_with_sink(&mut self, mode: TraceMode, sink: trace::EventSink) {
        let mut rec = Recorder::new(mode);
        rec.set_sink(sink);
        self.recorder = Some(rec);
    }

    /// Share a progress probe with a supervisor.  The run loop updates it
    /// after every dispatch (and snapshots the trace digest at each sample
    /// boundary), so if this world panics mid-run the probe still tells
    /// the supervisor how far it got.
    pub fn attach_probe(&mut self, probe: Arc<ProgressProbe>) {
        self.probe = Some(probe);
    }

    /// `Some` when a finished run was cut short by the configured budget.
    pub fn budget_exceeded(&self) -> Option<BudgetExceeded> {
        self.budget_exceeded
    }

    /// The buffered event trace (empty unless full tracing is enabled).
    pub fn event_trace(&self) -> &[TraceEvent] {
        self.recorder.as_ref().map(|r| r.events()).unwrap_or(&[])
    }

    /// Canonical digest of the event stream so far (`None` when tracing
    /// is disabled).
    pub fn trace_digest(&self) -> Option<TraceDigest> {
        self.recorder.as_ref().map(|r| r.digest())
    }

    /// The live recorder, if tracing is enabled.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// Detach and return the recorder (for post-run export).
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.recorder.take()
    }

    /// Record an event at the current virtual time.  With tracing disabled
    /// this is a single branch and the closure never runs.
    #[inline]
    fn emit(&mut self, make: impl FnOnce() -> EventKind) {
        if let Some(rec) = &mut self.recorder {
            let t = self.sched.now();
            rec.record(TraceEvent { t, kind: make() });
        }
    }

    /// The collected trace log (empty unless tracing was enabled).
    pub fn trace_log(&self) -> &[(SimTime, NodeId, String)] {
        self.trace_log.as_deref().unwrap_or(&[])
    }

    #[inline]
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    #[inline]
    pub fn node_count(&self) -> usize {
        self.hosts.len()
    }

    /// Lifetime counters of the scheduler's event slab (see
    /// [`sim_engine::EventPool`]).  Under `--parallel-world` these are
    /// aggregated across shards — summed books plus the *global* live
    /// high-water mark — so invariants like "allocated = freed + live"
    /// and "high water = profile queue depth + 1" hold in both modes
    /// (pinned by `crates/manet/tests/event_pool.rs`).
    pub fn event_pool_stats(&self) -> sim_engine::PoolStats {
        self.sched.pool_stats()
    }

    /// Resolved worker-lane count of the host-plane kernels (1 on the
    /// serial engine and whenever kernels run inline).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Shard and migration counters of a parallel world; `None` on the
    /// serial engine.
    pub fn shard_stats(&self) -> Option<ShardStats> {
        self.shards.as_ref().map(|sr| ShardStats {
            shards: sr.map.shard_count(),
            threads: self.threads,
            members: sr.members.clone(),
            migrations: sr.migrations,
            barriers: sr.barriers,
            mirrored_tx: self.channel.mirrored(),
        })
    }

    /// The shard whose strip owns `node`'s maintained grid cell (always 0
    /// on the serial engine).  Every event concerning a node is filed in
    /// its owning shard's queue; which shard that is never affects
    /// dispatch order (the merge key is global), only storage locality.
    #[inline]
    fn shard_of_node(&self, node: NodeId) -> usize {
        match &self.shards {
            Some(sr) => sr.map.shard_of_col(self.hosts.cells[node.index()].x),
            None => 0,
        }
    }

    /// Immutable protocol access (tests, examples, result extraction).
    pub fn protocol(&self, id: NodeId) -> &P {
        &self.hosts.protos[id.index()]
    }

    pub fn node_mode(&self, id: NodeId) -> RadioMode {
        self.hosts.meters[id.index()].mode()
    }

    pub fn node_alive(&self, id: NodeId) -> bool {
        self.hosts.meters[id.index()].is_alive()
    }

    /// Is the host currently crashed by the fault plan?
    pub fn node_crashed(&self, id: NodeId) -> bool {
        self.hosts.crashed[id.index()]
    }

    pub fn node_consumed_j(&self, id: NodeId) -> f64 {
        self.hosts.meters[id.index()].consumed_j()
    }

    /// Per-mode time/energy breakdown of a host.
    pub fn node_energy_audit(&self, id: NodeId) -> energy::EnergyAudit {
        *self.hosts.meters[id.index()].audit()
    }

    pub fn node_rbrc(&self, id: NodeId) -> f64 {
        self.hosts.meters[id.index()].rbrc()
    }

    pub fn node_cell(&self, id: NodeId) -> GridCoord {
        self.hosts.cells[id.index()]
    }

    pub fn node_pos(&self, id: NodeId) -> Point2 {
        self.hosts.traces[id.index()].position_at(self.sched.now())
    }

    pub fn stats(&self) -> &WorldStats {
        &self.stats
    }

    pub fn ledger(&self) -> &PacketLedger {
        &self.ledger
    }

    pub fn alive_series(&self) -> &TimeSeries {
        &self.alive_series
    }

    pub fn aen_series(&self) -> &TimeSeries {
        &self.aen_series
    }

    /// Fraction of finite-battery hosts currently alive.  A linear fold
    /// over the dense meter array.
    pub fn alive_fraction(&self) -> f64 {
        let mut total = 0u32;
        let mut alive = 0u32;
        for m in &self.hosts.meters {
            if m.battery().is_infinite() {
                continue;
            }
            total += 1;
            if m.is_alive() {
                alive += 1;
            }
        }
        if total == 0 {
            1.0
        } else {
            alive as f64 / total as f64
        }
    }

    /// aen (Eq. 2): total consumed energy of finite-battery hosts divided
    /// by their total initial energy — 0 at start, 1 when everyone is flat.
    pub fn aen(&self) -> f64 {
        let mut consumed = 0.0;
        let mut capacity = 0.0;
        for m in &self.hosts.meters {
            if m.battery().is_infinite() {
                continue;
            }
            consumed += m.consumed_j();
            capacity += m.battery().capacity_j();
        }
        if capacity == 0.0 {
            0.0
        } else {
            consumed / capacity
        }
    }

    /// Scenario group index of a host (0 outside scenario runs).
    pub fn node_group(&self, id: NodeId) -> u16 {
        self.hosts.groups[id.index()]
    }

    /// Per-host radio range in meters.
    pub fn node_range(&self, id: NodeId) -> f64 {
        self.hosts.ranges[id.index()]
    }

    /// Energy/liveness rollup per scenario group, indexed by group id
    /// (one linear fold, same accounting rules as [`Self::alive_fraction`]
    /// and [`Self::aen`]: infinite-battery hosts count toward `hosts` but
    /// not toward the energy or alive tallies).
    pub fn group_stats(&self) -> Vec<GroupStats> {
        let n_groups = self.hosts.groups.iter().copied().max().unwrap_or(0) as usize + 1;
        let mut out = vec![GroupStats::default(); n_groups];
        for (i, m) in self.hosts.meters.iter().enumerate() {
            let g = &mut out[self.hosts.groups[i] as usize];
            g.hosts += 1;
            if m.battery().is_infinite() {
                continue;
            }
            g.finite += 1;
            if m.is_alive() {
                g.alive += 1;
            }
            g.consumed_j += m.consumed_j();
            g.capacity_j += m.battery().capacity_j();
        }
        out
    }

    /// Kill a host immediately (failure injection: §3.2's "gateway is down
    /// because of an accident").  The host gets no chance to retire or
    /// hand over its tables; neighbours must detect the silence.
    pub fn kill_node(&mut self, id: NodeId) {
        let now = self.sched.now();
        let m = &mut self.hosts.meters[id.index()];
        let remaining = m.remaining_j();
        assert!(remaining.is_finite(), "cannot kill an infinite-energy host");
        m.drain_direct(now, remaining + 1.0);
        self.touch(id); // processes the death bookkeeping
    }

    /// Run the simulation up to `end` (inclusive of events at `end` that
    /// were already pending).  Returns the collected output; the world can
    /// be inspected further through accessors afterwards.
    pub fn run_until(&mut self, end: SimTime) -> RunOutput {
        if !self.started {
            self.started = true;
            self.bootstrap();
        }
        self.sched
            .schedule_at(0, end.max(self.sched.now()), Event::EndOfRun);
        // tripwire against zero-delay event cycles: no sane configuration
        // processes millions of events within one virtual nanosecond
        let mut last_t = SimTime::MAX;
        let mut same_t: u64 = 0;
        while let Some((t, ev)) = self.sched.next() {
            // watchdog: the budget is checked after the pop so the
            // diagnostic carries the time/count that actually crossed it;
            // the crossing event itself is not handled
            if let Err(exceeded) = self.sched.check_budget() {
                self.budget_exceeded = Some(exceeded);
                if let Some(p) = &self.probe {
                    p.record(self.sched.processed(), t);
                }
                break;
            }
            if let Some(p) = &self.probe {
                p.record(self.sched.processed(), t);
                if matches!(ev, Event::Sample) {
                    if let Some(rec) = &self.recorder {
                        p.record_digest(rec.digest());
                    }
                }
            }
            if t == last_t {
                same_t += 1;
                assert!(
                    same_t < 5_000_000,
                    "zero-delay event cycle at {t:?}: stuck on {ev:?} with {} pending",
                    self.sched.pending()
                );
            } else {
                last_t = t;
                same_t = 0;
            }
            if let Some(rec) = &mut self.recorder {
                let depth = self.sched.pending();
                let prof = rec.profile_mut();
                prof.bump(ev.domain());
                prof.observe_depth(depth);
            }
            // Epoch barrier of the sharded engine: when the merged clock
            // crosses the stride, prune every shard channel of entries
            // older than the collision-back-check grace.  Timing of the
            // prune is invisible to results (queries filter by time);
            // amortizing it here is where the parallel speedup lives.
            if let Some(sr) = &mut self.shards {
                if t >= sr.next_gc {
                    if t > SimTime::ZERO + CHANNEL_GC_GRACE {
                        self.channel.gc_barrier(t - CHANNEL_GC_GRACE);
                    }
                    sr.barriers += 1;
                    sr.next_gc = t + sr.stride;
                }
            }
            match ev {
                Event::EndOfRun => break,
                other => self.handle(other),
            }
        }
        // integrate everyone to the end instant for exact final energy —
        // a pure linear pass over the meter array (chunked when threaded)
        let now = self.sched.now();
        self.advance_all_meters(now);
        RunOutput {
            alive: self.alive_series.clone(),
            aen: self.aen_series.clone(),
            ledger: self.ledger.clone(),
            stats: self.stats,
            budget_exceeded: self.budget_exceeded,
        }
    }

    // ----- initialization -------------------------------------------

    fn bootstrap(&mut self) {
        // initial metric sample at t=0, then periodic
        self.sched.schedule_at(0, SimTime::ZERO, Event::Sample);
        // first grid crossing per node
        for i in 0..self.hosts.len() {
            let id = NodeId(i as u32);
            if let Some((t, _)) = self.hosts.traces[i].next_cell_crossing(&self.cfg.grid, SimTime::ZERO) {
                let sh = self.shard_of_node(id);
                self.sched.schedule_at(sh, t, Event::CellCrossing { node: id });
            }
        }
        // traffic (flow events live with the flow's source host)
        for (idx, f) in self.flows.flows().iter().enumerate() {
            if let Some(t) = f.packet_time(0) {
                let sh = match &self.shards {
                    Some(sr) => sr.map.shard_of_col(self.hosts.cells[f.src.index()].x),
                    None => 0,
                };
                self.sched.schedule_at(
                    sh,
                    t,
                    Event::AppSend {
                        flow_idx: idx,
                        seq: 0,
                    },
                );
            }
        }
        // fault-plan schedules: first crash / drain per node (each firing
        // schedules the next, so only the heads are seeded here)
        if self.fault.is_active() {
            for i in 0..self.hosts.len() {
                let node = NodeId(i as u32);
                let sh = self.shard_of_node(node);
                if let Some(gap) = self.fault.crash_gap_secs(node.0, 0) {
                    self.sched.schedule_in(
                        sh,
                        SimDuration::from_secs_f64(gap),
                        Event::FaultCrash { node, k: 0 },
                    );
                }
                if let Some(gap) = self.fault.drain_gap_secs(node.0, 0) {
                    self.sched.schedule_in(
                        sh,
                        SimDuration::from_secs_f64(gap),
                        Event::FaultDrain { node, k: 0 },
                    );
                }
            }
        }
        // protocol start
        for i in 0..self.hosts.len() {
            self.dispatch(NodeId(i as u32), |p, ctx| p.on_start(ctx));
        }
    }

    // ----- event handling --------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::MacTryTx { node } => self.mac_try_tx(node),
            Event::TxEnd { node, tx_id } => self.tx_end(node, tx_id),
            Event::AckDone { node, ok } => self.ack_done(node, ok),
            Event::Timer { node, id } => self.timer_fired(node, id),
            Event::Page { signal, origin } => self.page_arrives(signal, origin),
            Event::CellCrossing { node } => self.cell_crossing(node),
            Event::AppSend { flow_idx, seq } => self.app_send(flow_idx, seq),
            Event::Sample => self.sample(),
            Event::FaultCrash { node, k } => self.fault_crash(node, k),
            Event::FaultRejoin { node, k } => self.fault_rejoin(node, k),
            Event::FaultDrain { node, k } => self.fault_drain(node, k),
            Event::EndOfRun => unreachable!("handled by run loop"),
        }
    }

    // ----- fault injection --------------------------------------------

    /// The fault plan crashes `node`: it goes silent instantly — no
    /// retirement frame, no handover, pending timers die with it — until
    /// the scheduled reboot.  (The paper's §3.2 "gateway is down because of
    /// an accident", now as a schedulable event rather than a test hook.)
    fn fault_crash(&mut self, node: NodeId, k: u64) {
        if !self.touch(node) {
            return; // already dead for real: the chain ends here
        }
        let i = node.index();
        self.hosts.crashed[i] = true;
        let mac = &mut self.hosts.macs[i];
        mac.queue.clear();
        mac.phase = MacPhase::Idle;
        mac.attempt = 0;
        self.hosts.rx_refs[i] = 0;
        self.hosts.sleep_pending[i] = false;
        // a crashed host's pending protocol timers must never fire
        let stale: Vec<u64> = self
            .timers
            .iter()
            .filter(|(_, (owner, _, _))| *owner == node)
            .map(|(id, _)| *id)
            .collect();
        for id in stale {
            if let Some((_, _, handle)) = self.timers.remove(&id) {
                self.sched.cancel(handle);
            }
        }
        self.set_mode(node, RadioMode::Sleep);
        self.stats.crashes += 1;
        self.log_system(node, "fault: crash");
        self.emit(|| EventKind::FaultInjected {
            node,
            fault: FaultKind::Crash,
        });
        let sh = self.shard_of_node(node);
        self.sched.schedule_in(
            sh,
            SimDuration::from_secs_f64(self.fault.rejoin_secs()),
            Event::FaultRejoin { node, k: k + 1 },
        );
    }

    /// A crashed host reboots: radio back on, protocol state rebuilt from
    /// scratch (a reboot forgets routing tables and roles), `on_start`
    /// dispatched as at t=0.
    fn fault_rejoin(&mut self, node: NodeId, k: u64) {
        if !self.touch(node) {
            return;
        }
        self.hosts.crashed[node.index()] = false;
        self.set_mode(node, RadioMode::Idle);
        self.stats.rejoins += 1;
        self.log_system(node, "fault: rejoin");
        self.emit(|| EventKind::FaultInjected {
            node,
            fault: FaultKind::Rejoin,
        });
        self.hosts.protos[node.index()] = (self.factory)(node);
        self.dispatch(node, |p, ctx| p.on_start(ctx));
        if let Some(gap) = self.fault.crash_gap_secs(node.0, k) {
            let sh = self.shard_of_node(node);
            self.sched
                .schedule_in(sh, SimDuration::from_secs_f64(gap), Event::FaultCrash { node, k });
        }
    }

    /// A sudden drain removes a fraction of the node's remaining energy
    /// (shorted rail, runaway app — adversity the level classes of Eq. 1
    /// must absorb).
    fn fault_drain(&mut self, node: NodeId, k: u64) {
        if !self.touch(node) {
            return;
        }
        let now = self.sched.now();
        let m = &mut self.hosts.meters[node.index()];
        let remaining = m.remaining_j();
        if remaining.is_finite() {
            m.drain_direct(now, remaining * self.fault.drain_frac());
            self.stats.fault_drains += 1;
            self.log_system(node, "fault: drain");
            self.emit(|| EventKind::FaultInjected {
                node,
                fault: FaultKind::Drain,
            });
            self.touch(node); // a deep drain can be fatal on the spot
        }
        if let Some(gap) = self.fault.drain_gap_secs(node.0, k + 1) {
            let sh = self.shard_of_node(node);
            self.sched.schedule_in(
                sh,
                SimDuration::from_secs_f64(gap),
                Event::FaultDrain { node, k: k + 1 },
            );
        }
    }

    /// Advance a node's meter to now, processing death if it occurred.
    /// Returns true if the node is (still) alive.
    fn touch(&mut self, node: NodeId) -> bool {
        let now = self.sched.now();
        let tracing = self.recorder.is_some();
        let i = node.index();
        let meter = &mut self.hosts.meters[i];
        meter.advance(now);
        // battery level-class boundary crossings only need detecting when a
        // recorder is attached (level() divides; touch is the hottest path)
        let level = if tracing { Some(meter.level()) } else { None };
        let alive = meter.is_alive();
        self.commit_probe(node, level, alive)
    }

    /// The post-advance half of [`World::touch`]: level-class change
    /// detection, death bookkeeping, and the associated emissions.  The
    /// threaded kernels run the advance half in parallel, then replay
    /// this commit serially in ascending-id order — the exact order the
    /// serial loops produce — so both paths share one implementation.
    fn commit_probe(&mut self, node: NodeId, level: Option<EnergyLevel>, alive: bool) -> bool {
        let i = node.index();
        let mut level_change = None;
        if let Some(level) = level {
            if level != self.hosts.last_levels[i] {
                level_change = Some((self.hosts.last_levels[i], level));
                self.hosts.last_levels[i] = level;
            }
        }
        let newly_dead = !alive && !self.hosts.dead_handled[i];
        if newly_dead {
            self.hosts.dead_handled[i] = true;
            let mac = &mut self.hosts.macs[i];
            mac.queue.clear();
            mac.phase = MacPhase::Idle;
            self.hosts.rx_refs[i] = 0;
            // prune the spatial index: death is permanent (the meter
            // latches Off), so the entry would only go stale.  Touching a
            // dead host is observably inert, so dropping it from candidate
            // sets cannot shift the trace — the brute path mirrors this by
            // filtering on the same `dead_handled` flag.
            self.index.remove(node.0);
            self.stats.deaths += 1;
            if let Some(sr) = &mut self.shards {
                sr.members[sr.map.shard_of_col(self.hosts.cells[i].x)] -= 1;
            }
        }
        if let Some((from, to)) = level_change {
            self.emit(|| EventKind::BatteryLevel { node, from, to });
        }
        if newly_dead {
            self.log_system(node, "battery exhausted");
            self.emit(|| EventKind::NodeDeath { node });
        }
        alive
    }

    fn log_system(&mut self, node: NodeId, text: &str) {
        if let Some(log) = &mut self.trace_log {
            log.push((self.sched.now(), node, text.to_string()));
        }
    }

    // ----- threaded host-plane kernels --------------------------------
    //
    // The threaded engine keeps the serial dispatch spine — one event at
    // a time, in the proven merge order — and fans out the *data plane*
    // inside the all-host handlers: per-host energy integration, mobility
    // evaluation, and reception verdicts are pure per-host computations,
    // so they run on worker chunks (phase 1) while every state mutation,
    // RNG draw, and trace emission replays serially at the barrier
    // (phase 2) in ascending-id order.  Phase 1 reads nothing phase 2
    // writes for a *different* host (levels, death flags, MAC state are
    // strictly per-host; traces/cells/channel are read-only here), so the
    // interleaving the serial loop performs and the two-phase split are
    // observably identical — digest identity by construction, at any
    // thread count.  See DESIGN.md §14.

    /// Parallel advance + classify over all hosts (phase 1), then serial
    /// commit of every notable host (phase 2).  With `page` set, also
    /// evaluates paging reachability per host and returns the addressed
    /// list.  Returns `None` when the threaded path is not engaged — the
    /// caller falls back to the original serial loop.
    fn parallel_probe_all(&mut self, page: Option<(&PageSignal, Point2, f64)>) -> Option<Vec<NodeId>> {
        let n = self.hosts.len();
        if self.exec.is_none() || n < PAR_MIN_ITEMS {
            return None;
        }
        let now = self.sched.now();
        let tracing = self.recorder.is_some();
        let grain = par_grain(n, self.threads);
        self.probe_mail.ensure_lanes(chunk_count(n, grain));
        {
            let pool = self.exec.as_ref().expect("checked above");
            let split = self.probe_mail.split();
            let meters = SlicePtr::new(&mut self.hosts.meters);
            let traces = &self.hosts.traces;
            let cells = &self.hosts.cells;
            let last_levels = &self.hosts.last_levels;
            let dead_handled = &self.hosts.dead_handled;
            pool.for_each_range(n, grain, &|chunk, range| {
                let ms = unsafe { meters.slice(range.clone()) };
                let mut lane = unsafe { split.writer(chunk) };
                for (off, i) in range.enumerate() {
                    let m = &mut ms[off];
                    m.advance(now);
                    let level = if tracing { Some(m.level()) } else { None };
                    let alive = m.is_alive();
                    let changed = level.is_some_and(|l| l != last_levels[i]);
                    let newly_dead = !alive && !dead_handled[i];
                    let mut hit = false;
                    if alive {
                        if let Some((signal, origin, range_m)) = page {
                            let pj = traces[i].position_at(now);
                            hit = origin.within_range(pj, range_m)
                                && signal.addresses(NodeId(i as u32), cells[i]);
                        }
                    }
                    if changed || newly_dead || hit {
                        lane.post(
                            now,
                            ProbeMsg {
                                node: i as u32,
                                level,
                                alive,
                                hit,
                            },
                        );
                    }
                }
            });
        }
        let mut msgs = std::mem::take(&mut self.probe_msgs);
        debug_assert!(msgs.is_empty());
        self.probe_mail.drain(now, |_, m| msgs.push(m));
        let mut addressed = Vec::new();
        for m in &msgs {
            self.commit_probe(NodeId(m.node), m.level, m.alive);
            if m.hit {
                addressed.push(NodeId(m.node));
            }
        }
        msgs.clear();
        self.probe_msgs = msgs;
        Some(addressed)
    }

    /// Parallel final energy integration (no commits: the serial path is
    /// a bare `advance` loop too).
    fn advance_all_meters(&mut self, now: SimTime) {
        let n = self.hosts.len();
        if let Some(pool) = self.exec.as_ref() {
            if n >= PAR_MIN_ITEMS {
                let grain = par_grain(n, self.threads);
                let meters = SlicePtr::new(&mut self.hosts.meters);
                pool.for_each_range(n, grain, &|_chunk, range| {
                    for m in unsafe { meters.slice(range) } {
                        m.advance(now);
                    }
                });
                return;
            }
        }
        for m in &mut self.hosts.meters {
            m.advance(now);
        }
    }

    // ----- protocol dispatch ------------------------------------------

    fn dispatch(&mut self, node: NodeId, f: impl FnOnce(&mut P, &mut Ctx<'_, P>)) {
        if !self.touch(node) {
            return;
        }
        // a crashed host's protocol is frozen until the reboot
        if self.hosts.crashed[node.index()] {
            return;
        }
        let now = self.sched.now();
        let tracing = self.trace_log.is_some();
        let emitting = self.recorder.is_some();
        // GPS error: what the protocol *believes* its position is.  The
        // world's own bookkeeping (cells, channel geometry) keeps the true
        // position — only the receiver estimate is corrupted.  The fault
        // plan's global error and the scenario's per-group sigma compose
        // additively; each contributes (0, 0) — and performs no draws —
        // when its knob is zero.
        let i = node.index();
        let gps_off = self.fault.gps_offset_m(node.0, now.as_nanos());
        let sigma_off = scenario_gps_offset(self.cfg.seed, node.0, self.hosts.gps_sigmas[i], now.as_nanos());
        let gps_off = (gps_off.0 + sigma_off.0, gps_off.1 + sigma_off.1);
        let trace = &self.hosts.traces[i];
        let meter = &self.hosts.meters[i];
        let mut pos = trace.position_at(now);
        if gps_off != (0.0, 0.0) {
            pos = (pos + Vec2::new(gps_off.0, gps_off.1))
                .clamp_to(self.cfg.grid.width(), self.cfg.grid.height());
        }
        let view = NodeView {
            now,
            id: node,
            pos,
            vel: trace.velocity_at(now),
            cell: self.hosts.cells[i],
            mode: meter.mode(),
            rbrc: meter.rbrc(),
            level: meter.level(),
            remaining_j: meter.remaining_j(),
        };
        // field-disjoint borrows: protocol and rng mutably, trace shared
        let mut ctx = Ctx {
            view,
            grid: &self.cfg.grid,
            trace,
            rng: &mut self.hosts.rngs[i],
            next_timer_id: &mut self.next_timer_id,
            cmds: Vec::new(),
            tracing,
            emitting,
        };
        f(&mut self.hosts.protos[i], &mut ctx);
        let cmds = ctx.cmds;
        self.apply(node, cmds);
    }

    fn apply(&mut self, node: NodeId, cmds: Vec<Cmd<P>>) {
        let now = self.sched.now();
        for cmd in cmds {
            match cmd {
                Cmd::Send { kind, msg } => self.mac_enqueue(node, kind, msg),
                Cmd::Sleep => self.node_sleep(node),
                Cmd::Wake => self.node_wake(node),
                Cmd::PageHost(id) => {
                    self.stats.pages_sent += 1;
                    let origin = self.hosts.traces[node.index()].position_at(now);
                    self.emit(|| EventKind::RasPage {
                        by: node,
                        signal: PageSignal::Host(id),
                    });
                    let latency = self.cfg.ras.wake_latency
                        + SimDuration::from_nanos(self.fault.page_extra_delay_ns(node.0, now.as_nanos()));
                    let sh = self.shard_of_node(node);
                    self.sched.schedule_in(
                        sh,
                        latency,
                        Event::Page {
                            signal: PageSignal::Host(id),
                            origin,
                        },
                    );
                }
                Cmd::PageGrid(cell) => {
                    self.stats.pages_sent += 1;
                    let origin = self.hosts.traces[node.index()].position_at(now);
                    self.emit(|| EventKind::RasPage {
                        by: node,
                        signal: PageSignal::Grid(cell),
                    });
                    let latency = self.cfg.ras.wake_latency
                        + SimDuration::from_nanos(self.fault.page_extra_delay_ns(node.0, now.as_nanos()));
                    let sh = self.shard_of_node(node);
                    self.sched.schedule_in(
                        sh,
                        latency,
                        Event::Page {
                            signal: PageSignal::Grid(cell),
                            origin,
                        },
                    );
                }
                Cmd::SetTimer { id, delay, timer } => {
                    let sh = self.shard_of_node(node);
                    let handle = self.sched.schedule_in(sh, delay, Event::Timer { node, id: id.0 });
                    self.timers.insert(id.0, (node, timer, handle));
                }
                Cmd::CancelTimer(TimerId(id)) => {
                    if let Some((_, _, handle)) = self.timers.remove(&id) {
                        self.sched.cancel(handle);
                    }
                }
                Cmd::DeliverApp(packet) => {
                    self.ledger.record_delivered(packet.key(), now);
                    self.emit(|| EventKind::PacketDelivered {
                        node,
                        flow: packet.flow,
                        seq: packet.seq,
                    });
                }
                Cmd::Note(text) => {
                    if let Some(log) = &mut self.trace_log {
                        log.push((now, node, text));
                    }
                }
                Cmd::Emit(kind) => {
                    if let Some(rec) = &mut self.recorder {
                        rec.record(TraceEvent { t: now, kind });
                    }
                }
            }
        }
    }

    // ----- radio-mode management --------------------------------------

    fn set_mode(&mut self, node: NodeId, mode: RadioMode) {
        let now = self.sched.now();
        let meter = &mut self.hosts.meters[node.index()];
        let old = meter.mode();
        // the meter refuses transitions out of Off, so read back what stuck
        let new = meter.set_mode(now, mode);
        if old != new {
            self.emit(|| EventKind::RadioMode {
                node,
                from: old,
                to: new,
            });
        }
    }

    fn node_sleep(&mut self, node: NodeId) {
        if !self.touch(node) {
            return;
        }
        let i = node.index();
        // The protocol queued its goodbyes (e.g. ECGRID's sleep notice)
        // before deciding to sleep: the interface drains its queue first
        // and powers down the moment the MAC quiesces.  Frames can no
        // longer be *enqueued* once asleep (mac_enqueue drops them), so
        // nothing stale survives into the next wake.
        let mac = &self.hosts.macs[i];
        if !matches!(mac.phase, MacPhase::Idle) || !mac.queue.is_empty() {
            self.hosts.sleep_pending[i] = true;
            return;
        }
        self.hosts.sleep_pending[i] = false;
        self.hosts.rx_refs[i] = 0;
        self.set_mode(node, RadioMode::Sleep);
    }

    fn node_wake(&mut self, node: NodeId) {
        if !self.touch(node) {
            return;
        }
        self.hosts.sleep_pending[node.index()] = false;
        if self.hosts.meters[node.index()].mode() == RadioMode::Sleep {
            self.set_mode(node, RadioMode::Idle);
        }
        self.mac_kick(node);
    }

    // ----- MAC --------------------------------------------------------

    fn mac_enqueue(&mut self, node: NodeId, kind: FrameKind, msg: P::Msg) {
        if !self.touch(node) {
            return;
        }
        // transmitting requires an active transceiver: a protocol must
        // wake() before sending (the ACQ handshake does exactly that,
        // §3.3).  A frame sent from a sleeping state is a protocol bug —
        // silently powering the radio up here would desynchronize the
        // protocol's sleep bookkeeping, so the frame is dropped instead.
        if self.hosts.meters[node.index()].mode() == RadioMode::Sleep {
            self.stats.mac_drops += 1;
            return;
        }
        let bytes = msg.wire_bytes();
        let mac = &mut self.hosts.macs[node.index()];
        // finite interface queue: tail-drop when a protocol outpaces the
        // channel (protects against pathological send loops, like real NICs)
        if mac.queue.len() >= MAC_QUEUE_CAP {
            self.stats.mac_drops += 1;
            return;
        }
        mac.queue.push_back(OutFrame { kind, msg, bytes });
        self.mac_kick(node);
    }

    /// Contention window for the node's head-of-queue frame.  Broadcasts
    /// (HELLO beacons, RREQ floods) contend over a much wider window:
    /// floods are triggered by a shared reception, so dozens of hosts
    /// would otherwise pick from the same 32 slots and collide — the wide
    /// window plays the role of ns-2's AODV broadcast jitter.
    fn head_cw(&self, node: NodeId) -> u32 {
        let mac = &self.hosts.macs[node.index()];
        match mac.queue.front().map(|f| f.kind) {
            Some(FrameKind::Broadcast) => (self.cfg.mac.cw_min + 1) * 8 - 1,
            _ => self.cfg.mac.cw_for_attempt(mac.attempt),
        }
    }

    /// Schedule a MacTryTx if the MAC is idle with queued frames.
    ///
    /// Every access draws an initial contention backoff (DCF-style): most
    /// frames are queued in *reaction* to a reception, so dozens of hosts
    /// would otherwise transmit at exactly now+DIFS and collide wholesale.
    fn mac_kick(&mut self, node: NodeId) {
        let cw = self.head_cw(node);
        let i = node.index();
        if self.hosts.macs[i].phase == MacPhase::Idle
            && !self.hosts.macs[i].queue.is_empty()
            && self.hosts.meters[i].mode() != RadioMode::Sleep
        {
            self.hosts.macs[i].phase = MacPhase::WaitTry;
            let slots = self.hosts.rngs[i].gen_range(0..=cw);
            let delay = self.cfg.mac.difs + self.cfg.mac.backoff(slots);
            let sh = self.shard_of_node(node);
            self.sched.schedule_in(sh, delay, Event::MacTryTx { node });
        }
    }

    fn mac_try_tx(&mut self, node: NodeId) {
        if !self.touch(node) {
            return;
        }
        let now = self.sched.now();
        let i = node.index();
        if self.hosts.macs[i].phase != MacPhase::WaitTry {
            return; // stale
        }
        if self.hosts.meters[i].mode() == RadioMode::Sleep {
            self.hosts.macs[i].phase = MacPhase::Idle; // re-kicked on wake
            return;
        }
        if self.hosts.macs[i].queue.is_empty() {
            self.hosts.macs[i].phase = MacPhase::Idle;
            return;
        }
        if now > SimTime::ZERO + CHANNEL_GC_GRACE {
            self.channel.gc_tx_path(now - CHANNEL_GC_GRACE);
        }
        let sh = self.shard_of_node(node);
        let pos = self.hosts.traces[i].position_at(now);
        if let Some(busy_end) = self.channel.busy_until(sh, pos, now) {
            // deferral: re-sense after the medium frees plus DIFS + backoff
            let cw = self.head_cw(node);
            let slots = self.hosts.rngs[i].gen_range(0..=cw);
            let at = busy_end + self.cfg.mac.difs + self.cfg.mac.backoff(slots);
            self.sched.schedule_at(sh, at.max(now), Event::MacTryTx { node });
            return;
        }
        // medium idle: transmit the head-of-queue frame
        let (kind, bytes, msg) = {
            let f = self.hosts.macs[i].queue.front().expect("non-empty checked");
            (f.kind, f.bytes, f.msg.clone())
        };
        let meta = FrameMeta {
            src: node,
            kind,
            payload_bytes: bytes,
        };
        let dur = self.cfg.mac.airtime(&meta);
        let end = now + dur;
        let tx_range = self.hosts.ranges[i];
        let tx_id = self.channel.begin_tx(sh, node, pos, tx_range, now, end);

        // freeze the receiver set: alive, transceiver on, not transmitting,
        // within range at tx start.  Candidates come from the reusable
        // scratch buffer in ascending id order (identical whichever query
        // path filled it); the receiver vector is recycled from earlier
        // flights, so the steady-state hot path performs zero allocations.
        let mut cand = std::mem::take(&mut self.gather_buf);
        self.fill_candidates(self.hosts.cells[i], &mut cand);
        let mut receivers = self.recv_pool.pop().unwrap_or_default();
        debug_assert!(receivers.is_empty());
        if self.exec.is_some() && cand.len() >= PAR_MIN_ITEMS {
            // Threaded freeze: candidates are unique ascending ids, so
            // candidate-chunks touch disjoint hosts.  Phase 1 advances
            // each candidate's meter and computes its receive verdict;
            // phase 2 commits notable hosts in candidate order (the
            // serial loop's touch order) and then collects receivers in
            // candidate order (serial's push order; pushes emit nothing).
            let nc = cand.len();
            let now_t = now;
            let tracing = self.recorder.is_some();
            let grain = par_grain(nc, self.threads);
            self.freeze_flags.clear();
            self.freeze_flags.resize(nc, false);
            self.probe_mail.ensure_lanes(chunk_count(nc, grain));
            {
                let pool = self.exec.as_ref().expect("checked above");
                let split = self.probe_mail.split();
                let meters = SlicePtr::new(&mut self.hosts.meters);
                let flags = SlicePtr::new(&mut self.freeze_flags);
                let traces = &self.hosts.traces;
                let last_levels = &self.hosts.last_levels;
                let dead_handled = &self.hosts.dead_handled;
                let cand_ref = &cand;
                let sender = node.index();
                pool.for_each_range(nc, grain, &|chunk, range| {
                    let out = unsafe { flags.slice(range.clone()) };
                    let mut lane = unsafe { split.writer(chunk) };
                    for (off, c) in range.enumerate() {
                        let j = cand_ref[c] as usize;
                        if j == sender {
                            continue; // the serial loop skips self before touching
                        }
                        let m = unsafe { meters.get_mut(j) };
                        m.advance(now_t);
                        let level = if tracing { Some(m.level()) } else { None };
                        let alive = m.is_alive();
                        if level.is_some_and(|l| l != last_levels[j]) || (!alive && !dead_handled[j]) {
                            lane.post(
                                now_t,
                                ProbeMsg {
                                    node: j as u32,
                                    level,
                                    alive,
                                    hit: false,
                                },
                            );
                        }
                        if alive && matches!(m.mode(), RadioMode::Idle | RadioMode::Rx) {
                            let pj = traces[j].position_at(now_t);
                            out[off] = pos.within_range(pj, tx_range);
                        }
                    }
                });
            }
            let mut msgs = std::mem::take(&mut self.probe_msgs);
            debug_assert!(msgs.is_empty());
            self.probe_mail.drain(now, |_, m| msgs.push(m));
            for m in &msgs {
                self.commit_probe(NodeId(m.node), m.level, m.alive);
            }
            msgs.clear();
            self.probe_msgs = msgs;
            for (c, &j) in cand.iter().enumerate() {
                if self.freeze_flags[c] {
                    receivers.push(NodeId(j));
                }
            }
        } else {
            for &j in &cand {
                let jid = NodeId(j);
                if jid == node {
                    continue;
                }
                if !self.touch(jid) {
                    continue;
                }
                let mode = self.hosts.meters[j as usize].mode();
                if !matches!(mode, RadioMode::Idle | RadioMode::Rx) {
                    continue;
                }
                let pj = self.hosts.traces[j as usize].position_at(now);
                if !pos.within_range(pj, tx_range) {
                    continue;
                }
                receivers.push(jid);
            }
        }
        self.gather_buf = cand;
        for &r in &receivers {
            self.hosts.rx_refs[r.index()] += 1;
            if self.hosts.meters[r.index()].mode() == RadioMode::Idle {
                self.set_mode(r, RadioMode::Rx);
            }
        }
        self.set_mode(node, RadioMode::Tx);
        self.hosts.macs[i].phase = MacPhase::Transmitting(tx_id);
        self.stats.tx_started += 1;
        match kind {
            FrameKind::Broadcast => self.stats.broadcasts += 1,
            FrameKind::Unicast(_) => self.stats.unicasts += 1,
        }
        self.emit(|| EventKind::MacTx {
            node,
            dst: kind.dst(),
            bytes: meta.wire_bytes(),
        });
        self.flights.insert(
            tx_id,
            Flight {
                src: node,
                kind,
                msg,
                start: now,
                end,
                receivers,
            },
        );
        self.sched.schedule_at(sh, end, Event::TxEnd { node, tx_id });
    }

    fn tx_end(&mut self, node: NodeId, tx_id: u64) {
        let now = self.sched.now();
        let flight = self.flights.remove(&tx_id).expect("flight must exist");
        // a sender that crashed mid-frame kills its own transmission
        let sender_alive = self.touch(node) && !self.hosts.crashed[node.index()];
        if sender_alive && self.hosts.meters[node.index()].mode() == RadioMode::Tx {
            self.set_mode(node, RadioMode::Idle);
        }

        // unwind receiver Rx states and evaluate reception success (the
        // success list is a recycled scratch vector)
        let mut successes = std::mem::take(&mut self.succ_buf);
        debug_assert!(successes.is_empty());
        if self.exec.is_some() && flight.receivers.len() >= PAR_MIN_ITEMS {
            // Threaded receiver evaluation: phase 1 advances each frozen
            // receiver's meter and precomputes its pure collision verdict
            // (receivers are unique ids, so chunks touch disjoint hosts;
            // `corrupted` is a read-only channel query).  Phase 2 replays
            // the serial loop per receiver in order — commit, Rx unwind,
            // gates, the *stateful* fault draw — off the dense slots.
            let nr = flight.receivers.len();
            let now_t = now;
            let tracing = self.recorder.is_some();
            let grain = par_grain(nr, self.threads);
            let src_pos = self.hosts.traces[flight.src.index()].position_at(flight.start);
            self.txend_slots.clear();
            self.txend_slots.resize(nr, TxProbe::default());
            {
                let pool = self.exec.as_ref().expect("checked above");
                let slots = SlicePtr::new(&mut self.txend_slots);
                let meters = SlicePtr::new(&mut self.hosts.meters);
                let traces = &self.hosts.traces;
                let cells = &self.hosts.cells;
                let channel = &self.channel;
                let shards = self.shards.as_ref();
                let recvs = &flight.receivers;
                let (start, end) = (flight.start, flight.end);
                pool.for_each_range(nr, grain, &|_chunk, range| {
                    let out = unsafe { slots.slice(range.clone()) };
                    for (off, c) in range.enumerate() {
                        let j = recvs[c].index();
                        let m = unsafe { meters.get_mut(j) };
                        m.advance(now_t);
                        let pr = traces[j].position_at(now_t);
                        let rsh = match shards {
                            Some(sr) => sr.map.shard_of_col(cells[j].x),
                            None => 0,
                        };
                        out[off] = TxProbe {
                            level: if tracing { Some(m.level()) } else { None },
                            alive: m.is_alive(),
                            corrupt: channel.corrupted(rsh, tx_id, src_pos, pr, start, end),
                        };
                    }
                });
            }
            for c in 0..nr {
                let r = flight.receivers[c];
                let s = self.txend_slots[c];
                let alive = self.commit_probe(r, s.level, s.alive);
                let j = r.index();
                if self.hosts.rx_refs[j] > 0 {
                    self.hosts.rx_refs[j] -= 1;
                }
                let mode = self.hosts.meters[j].mode();
                if self.hosts.rx_refs[j] == 0 && mode == RadioMode::Rx {
                    self.set_mode(r, RadioMode::Idle);
                }
                if !sender_alive || !alive {
                    self.stats.missed_unreachable += 1;
                    continue;
                }
                let mode = self.hosts.meters[j].mode();
                if !mode.can_receive() {
                    self.stats.missed_unreachable += 1;
                    continue;
                }
                if s.corrupt {
                    self.stats.corrupted += 1;
                    let from = flight.src;
                    self.emit(|| EventKind::MacCollision { node: r, from });
                    continue;
                }
                // injected channel adversity (independent and burst loss)
                if self.fault.frame_lost(r.0, tx_id, now.as_nanos()) {
                    self.stats.frames_lost_fault += 1;
                    self.emit(|| EventKind::FaultInjected {
                        node: r,
                        fault: FaultKind::FrameLoss,
                    });
                    continue;
                }
                successes.push(r);
            }
        } else {
            for &r in &flight.receivers {
                let alive = self.touch(r);
                let j = r.index();
                if self.hosts.rx_refs[j] > 0 {
                    self.hosts.rx_refs[j] -= 1;
                }
                let mode = self.hosts.meters[j].mode();
                if self.hosts.rx_refs[j] == 0 && mode == RadioMode::Rx {
                    self.set_mode(r, RadioMode::Idle);
                }
                if !sender_alive || !alive {
                    self.stats.missed_unreachable += 1;
                    continue;
                }
                let mode = self.hosts.meters[j].mode();
                if !mode.can_receive() {
                    self.stats.missed_unreachable += 1;
                    continue;
                }
                let pr = self.hosts.traces[j].position_at(now);
                let src_pos = self.hosts.traces[flight.src.index()].position_at(flight.start);
                let rsh = self.shard_of_node(r);
                if self
                    .channel
                    .corrupted(rsh, tx_id, src_pos, pr, flight.start, flight.end)
                {
                    self.stats.corrupted += 1;
                    let from = flight.src;
                    self.emit(|| EventKind::MacCollision { node: r, from });
                    continue;
                }
                // injected channel adversity (independent and burst loss)
                if self.fault.frame_lost(r.0, tx_id, now.as_nanos()) {
                    self.stats.frames_lost_fault += 1;
                    self.emit(|| EventKind::FaultInjected {
                        node: r,
                        fault: FaultKind::FrameLoss,
                    });
                    continue;
                }
                successes.push(r);
            }
        }

        match flight.kind {
            FrameKind::Broadcast => {
                for r in &successes {
                    self.stats.frames_delivered += 1;
                    let (src, msg) = (flight.src, flight.msg.clone());
                    let bytes = msg.wire_bytes();
                    let rr = *r;
                    self.emit(|| EventKind::MacRx {
                        node: rr,
                        from: src,
                        bytes,
                    });
                    self.dispatch(*r, move |p, ctx| p.on_frame(ctx, src, FrameKind::Broadcast, &msg));
                }
                if sender_alive {
                    self.mac_complete_head(node);
                }
            }
            FrameKind::Unicast(dst) => {
                let ok = successes.contains(&dst);
                if ok {
                    self.stats.frames_delivered += 1;
                    // ACK exchange: dst transmits the ACK, sender receives it.
                    // The ACK is not modelled on the channel (it is 38 bytes
                    // after a SIFS and at the paper's load never collides);
                    // its energy is charged directly.
                    let ack_secs = self.cfg.mac.ack_airtime().as_secs_f64();
                    let dmeter = &mut self.hosts.meters[dst.index()];
                    let d_extra = (dmeter.profile().tx_w - dmeter.profile().idle_w) * ack_secs;
                    dmeter.drain_direct(now, d_extra);
                    if sender_alive {
                        let smeter = &mut self.hosts.meters[node.index()];
                        let s_extra = (smeter.profile().rx_w - smeter.profile().idle_w) * ack_secs;
                        smeter.drain_direct(now, s_extra);
                    }
                    let (src, msg) = (flight.src, flight.msg.clone());
                    let bytes = msg.wire_bytes();
                    self.emit(|| EventKind::MacRx {
                        node: dst,
                        from: src,
                        bytes,
                    });
                    self.dispatch(dst, move |p, ctx| {
                        p.on_frame(ctx, src, FrameKind::Unicast(dst), &msg)
                    });
                }
                if sender_alive {
                    self.hosts.macs[node.index()].phase = MacPhase::AwaitAck(tx_id);
                    let delay = if ok {
                        self.cfg.mac.sifs + self.cfg.mac.ack_airtime()
                    } else {
                        self.cfg.mac.ack_timeout()
                    };
                    let sh = self.shard_of_node(node);
                    self.sched.schedule_in(sh, delay, Event::AckDone { node, ok });
                }
            }
        }
        // recycle both scratch vectors for the next flight
        successes.clear();
        self.succ_buf = successes;
        let mut recv = flight.receivers;
        recv.clear();
        self.recv_pool.push(recv);
        if now > SimTime::ZERO + CHANNEL_GC_GRACE {
            self.channel.gc_tx_path(now - CHANNEL_GC_GRACE);
        }
    }

    fn ack_done(&mut self, node: NodeId, ok: bool) {
        if !self.touch(node) {
            return;
        }
        let i = node.index();
        if !matches!(self.hosts.macs[i].phase, MacPhase::AwaitAck(_)) {
            return; // stale
        }
        if ok {
            self.mac_complete_head(node);
            return;
        }
        // ACK missing: retry with exponential backoff, bounded
        self.hosts.macs[i].attempt += 1;
        if self.hosts.macs[i].attempt > self.cfg.mac.max_retries {
            self.stats.mac_drops += 1;
            let frame = self.hosts.macs[i].queue.pop_front().expect("head frame");
            if let FrameKind::Unicast(d) = frame.kind {
                self.emit(|| EventKind::MacDrop { node, dst: Some(d) });
            }
            self.hosts.macs[i].attempt = 0;
            self.hosts.macs[i].phase = MacPhase::Idle;
            if let FrameKind::Unicast(dst) = frame.kind {
                let msg = frame.msg;
                self.dispatch(node, move |p, ctx| p.on_unicast_failed(ctx, dst, &msg));
            }
            if self.hosts.sleep_pending[i] {
                self.node_sleep(node);
            }
            if self.hosts.meters[i].mode() != RadioMode::Sleep {
                self.mac_kick(node);
            }
        } else {
            self.stats.retransmissions += 1;
            let attempt = self.hosts.macs[i].attempt;
            self.emit(|| EventKind::MacRetry { node, attempt });
            let cw = self.cfg.mac.cw_for_attempt(attempt);
            let slots = self.hosts.rngs[i].gen_range(0..=cw);
            let delay = self.cfg.mac.difs + self.cfg.mac.backoff(slots);
            self.hosts.macs[i].phase = MacPhase::WaitTry;
            let sh = self.shard_of_node(node);
            self.sched.schedule_in(sh, delay, Event::MacTryTx { node });
        }
    }

    /// Head-of-queue frame finished (broadcast ended / unicast acked).
    fn mac_complete_head(&mut self, node: NodeId) {
        let i = node.index();
        let mac = &mut self.hosts.macs[i];
        mac.queue.pop_front();
        mac.attempt = 0;
        mac.phase = MacPhase::Idle;
        if self.hosts.sleep_pending[i] {
            // the protocol already decided to sleep; node_sleep applies it
            // if the queue has drained, or re-defers until it has
            self.node_sleep(node);
            if self.hosts.meters[i].mode() == RadioMode::Sleep {
                return;
            }
        }
        self.mac_kick(node);
    }

    // ----- timers, pages, mobility, traffic ---------------------------

    fn timer_fired(&mut self, node: NodeId, id: u64) {
        let Some((_, timer, _)) = self.timers.remove(&id) else {
            return; // cancelled concurrently (or wiped by a crash)
        };
        if !self.touch(node) {
            return;
        }
        self.stats.timers_fired += 1;
        self.dispatch(node, move |p, ctx| p.on_timer(ctx, timer));
    }

    fn page_arrives(&mut self, signal: PageSignal, origin: Point2) {
        let now = self.sched.now();
        let range = self.cfg.ras.range_m;
        // The paging scan is the engine's only remaining O(N)-per-event
        // loop: every host's meter advances (the page is a physical
        // instant — energy death timing must not depend on whether anyone
        // paged) and reachability is evaluated.  Threaded when engaged.
        let addressed = match self.parallel_probe_all(Some((&signal, origin, range))) {
            Some(addressed) => addressed,
            None => {
                let mut addressed = Vec::new();
                for j in 0..self.hosts.len() {
                    let jid = NodeId(j as u32);
                    if !self.touch(jid) {
                        continue;
                    }
                    let pj = self.hosts.traces[j].position_at(now);
                    if !origin.within_range(pj, range) {
                        continue;
                    }
                    if signal.addresses(jid, self.hosts.cells[j]) {
                        addressed.push(jid);
                    }
                }
                addressed
            }
        };
        for jid in addressed {
            // a crashed host's paging receiver is as dead as its radio
            if self.hosts.crashed[jid.index()] {
                continue;
            }
            // injected paging-channel loss
            if self.fault.page_lost(jid.0, now.as_nanos()) {
                self.stats.pages_lost_fault += 1;
                self.emit(|| EventKind::FaultInjected {
                    node: jid,
                    fault: FaultKind::PageLoss,
                });
                continue;
            }
            if self.hosts.meters[jid.index()].mode() == RadioMode::Sleep {
                self.set_mode(jid, RadioMode::Idle);
                self.stats.pages_woken += 1;
                self.mac_kick(jid);
            }
            self.dispatch(jid, move |p, ctx| p.on_page(ctx, signal));
        }
    }

    fn cell_crossing(&mut self, node: NodeId) {
        let now = self.sched.now();
        let i = node.index();
        // Schedule the next crossing regardless of death/sleep so the
        // bookkeeping chain never breaks while the node might still live.
        // Query from 1 µs ahead: a host sitting *exactly* on a boundary
        // would otherwise report a 0-delay crossing forever (at 10 m/s the
        // skipped distance is 10 µm — far below any physical relevance).
        let from = now + SimDuration::from_micros(1);
        if let Some((t, _)) = self.hosts.traces[i].next_cell_crossing(&self.cfg.grid, from) {
            let sh = self.shard_of_node(node);
            self.sched
                .schedule_at(sh, t.max(from), Event::CellCrossing { node });
        }
        if !self.touch(node) {
            return;
        }
        let old = self.hosts.cells[i];
        let new = self.hosts.traces[i].cell_at(&self.cfg.grid, now);
        if new == old {
            return;
        }
        self.hosts.cells[i] = new;
        // O(1) bucket move (slot-tracked), not a linear rescan of the old
        // cell's occupant list
        self.index.move_to(node.0, new.x, new.y);
        // shard ownership is a function of the maintained cell, so a
        // crossing into another strip is the whole migration: two counter
        // moves, no column shuffling
        if let Some(sr) = &mut self.shards {
            let os = sr.map.shard_of_col(old.x);
            let ns = sr.map.shard_of_col(new.x);
            if os != ns {
                sr.members[os] -= 1;
                sr.members[ns] += 1;
                sr.migrations += 1;
            }
        }
        self.stats.cell_crossings += 1;
        self.emit(|| EventKind::CellChange {
            node,
            from: old,
            to: new,
        });
        // sleeping hosts don't observe the crossing (their GPS snapshot is
        // read when their dwell timer wakes them, §3.2)
        if self.hosts.meters[i].mode() != RadioMode::Sleep {
            self.dispatch(node, move |p, ctx| p.on_cell_change(ctx, old, new));
        }
    }

    fn app_send(&mut self, flow_idx: usize, seq: u64) {
        let flow = self.flows.flows()[flow_idx];
        // schedule the next packet of this flow
        if let Some(t) = flow.packet_time(seq + 1) {
            let sh = match &self.shards {
                Some(sr) => sr.map.shard_of_col(self.hosts.cells[flow.src.index()].x),
                None => 0,
            };
            self.sched.schedule_at(
                sh,
                t,
                Event::AppSend {
                    flow_idx,
                    seq: seq + 1,
                },
            );
        }
        let src = flow.src;
        if !self.touch(src) {
            return; // a dead source issues nothing
        }
        if self.hosts.crashed[src.index()] {
            return; // nor does a crashed one (not even into the ledger)
        }
        let packet = AppPacket {
            flow: flow.id.0,
            seq,
            bytes: flow.packet_bytes,
        };
        let now = self.sched.now();
        self.ledger.record_sent(packet.key(), now);
        self.emit(|| EventKind::PacketSent {
            src,
            flow: packet.flow,
            seq,
        });
        let dst = flow.dst;
        self.dispatch(src, move |p, ctx| p.on_app_send(ctx, dst, packet));
    }

    fn sample(&mut self) {
        let now = self.sched.now();
        // integrate energy and process deaths — threaded when engaged,
        // with the commit replay matching this loop's ascending-id order
        if self.parallel_probe_all(None).is_none() {
            for i in 0..self.hosts.len() {
                let id = NodeId(i as u32);
                self.touch(id);
            }
        }
        let t = now.as_secs_f64();
        let alive = self.alive_fraction();
        let aen = self.aen();
        self.alive_series.push(t, alive);
        self.aen_series.push(t, aen);
        self.sched.schedule_in(0, self.cfg.sample_every, Event::Sample);
    }
}
