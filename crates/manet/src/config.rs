//! World construction parameters.

use energy::{Battery, PowerProfile};
use fault::FaultPlan;
use geo::GridMap;
use mobility::MobilityTrace;
use radio::{GatherFallback, MacConfig, NeighborIndex, RasConfig};
use sim_engine::{Backend, RunBudget, SimDuration};

/// Global simulation parameters.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Field dimensions and grid partition (1000×1000 m, d = 100 m).
    pub grid: GridMap,
    /// Radio range in meters (250 m).
    pub range_m: f64,
    /// MAC timing and contention parameters.
    pub mac: MacConfig,
    /// RAS paging parameters.
    pub ras: RasConfig,
    /// Metrics sampling period (alive fraction, aen).
    pub sample_every: SimDuration,
    /// Master seed for all per-node randomness (MAC backoff, protocol
    /// jitter).  Mobility and traffic randomness are supplied by the
    /// caller via traces/flows so that every protocol under comparison
    /// sees identical scenarios.
    pub seed: u64,
    /// PHY capture threshold as a distance ratio (see
    /// `radio::channel::CAPTURE_RATIO_10DB`); `None` makes every
    /// overlapping interferer fatal (ablation knob).
    pub capture_ratio: Option<f64>,
    /// Pending-event-set backend of the scheduler.  Both backends obey the
    /// same FIFO contract, so results are identical; the knob exists for
    /// benchmarking and for the golden-trace cross-backend tests.
    pub backend: Backend,
    /// Injected adversity (frame/page loss, churn, drains, GPS error).
    /// The all-zero default performs no draws and leaves every run — and
    /// its trace digest — bit-identical to a fault-free build.
    pub faults: FaultPlan,
    /// Watchdog ceilings on the event loop (dispatched events and virtual
    /// time).  The unlimited default changes nothing; a bounded run that
    /// trips the budget terminates with a `BudgetExceeded` diagnostic in
    /// its `RunOutput` instead of hanging.
    pub budget: RunBudget,
    /// How the world answers "who can hear this transmission?": the
    /// maintained grid-bucket index (default) or a brute-force scan of
    /// every node.  Both produce identical candidate lists in identical
    /// order — and therefore bit-identical trace digests (proven by
    /// `tests/neighbor_equivalence.rs`); the brute path exists as the
    /// reference implementation and benchmark baseline.
    pub neighbor_index: NeighborIndex,
    /// When grid-mode receiver discovery falls back to the brute scan:
    /// adaptively at low occupancy (default), always, or never.  All
    /// settings produce identical candidate lists — the knob only moves
    /// work between the two equivalent query paths, so digests never
    /// change (proven by `tests/soa_equivalence.rs`).  Ignored when
    /// `neighbor_index` is `Brute`.
    pub gather_fallback: GatherFallback,
    /// Run the sharded conservative-sync engine: the field is split into
    /// `shards` vertical strips of grid-cell columns, each with its own
    /// event queue, event slab, and channel state, merged at every pop in
    /// deterministic `(time, queue_seq, shard_id)` order.  Replays are
    /// bit-identical to the serial engine (proven by
    /// `tests/parallel_equivalence.rs`); the win is per-shard channel
    /// bookkeeping amortized to epoch barriers.  See DESIGN.md §12.
    pub parallel_world: bool,
    /// Shard count for `parallel_world`.  `0` means auto: derive K from
    /// `std::thread::available_parallelism`.  Ignored by the serial
    /// engine.
    pub shards: usize,
    /// Worker-thread count for `parallel_world`: the host-plane kernels
    /// (energy integration, mobility evaluation, reception verdicts,
    /// paging scans) fan out over this many lanes, while dispatch and
    /// all state commits stay on the caller in exact serial order — so
    /// replays are bit-identical to the serial engine at every T
    /// (proven by `tests/parallel_equivalence.rs`).  `1` runs every
    /// kernel inline (no threads spawned); `0` means auto:
    /// `min(shards, available_parallelism)`.  Ignored by the serial
    /// engine.  See DESIGN.md §14.
    pub threads: usize,
}

/// The host's available hardware parallelism (1 when detection fails).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl WorldConfig {
    /// The paper's evaluation environment.
    pub fn paper_default(seed: u64) -> Self {
        WorldConfig {
            grid: GridMap::paper_default(),
            range_m: 250.0,
            mac: MacConfig::paper_default(),
            ras: RasConfig::paper_default(),
            sample_every: SimDuration::from_secs(10),
            seed,
            capture_ratio: Some(radio::channel::CAPTURE_RATIO_10DB),
            backend: Backend::Heap,
            faults: FaultPlan::none(),
            budget: RunBudget::UNLIMITED,
            neighbor_index: NeighborIndex::default(),
            gather_fallback: GatherFallback::default(),
            parallel_world: false,
            shards: 1,
            threads: 1,
        }
    }

    /// The shard count a world built from this config will actually use:
    /// `shards`, with `0` resolved to the host's parallelism.
    pub fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            host_parallelism()
        } else {
            self.shards
        }
    }

    /// The worker-lane count a world built from this config will actually
    /// use: `threads`, with `0` resolved to
    /// `min(resolved_shards, available_parallelism)`.  Always 1 on the
    /// serial engine.
    pub fn resolved_threads(&self) -> usize {
        if !self.parallel_world {
            return 1;
        }
        if self.threads == 0 {
            host_parallelism().min(self.resolved_shards()).max(1)
        } else {
            self.threads
        }
    }

    /// Same configuration on a different scheduler backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Same configuration under an injected fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Same configuration under a run budget (watchdog ceilings).
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Same configuration with an explicit neighbor-query strategy.
    pub fn with_neighbor_index(mut self, neighbor_index: NeighborIndex) -> Self {
        self.neighbor_index = neighbor_index;
        self
    }

    /// Same configuration with an explicit gather-fallback policy.
    pub fn with_gather_fallback(mut self, gather_fallback: GatherFallback) -> Self {
        self.gather_fallback = gather_fallback;
        self
    }

    /// Same configuration on the sharded conservative-sync engine with
    /// `shards` strips (`0` = auto from the host's parallelism).
    pub fn with_parallel_world(mut self, shards: usize) -> Self {
        self.parallel_world = true;
        self.shards = shards;
        self
    }

    /// Same configuration with `threads` worker lanes for the parallel
    /// engine (`0` = auto: `min(shards, available_parallelism)`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Per-host construction data.
#[derive(Clone, Debug)]
pub struct HostSetup {
    pub profile: PowerProfile,
    pub battery: Battery,
    pub trace: MobilityTrace,
    /// Radio range override in meters; `None` uses `WorldConfig::range_m`.
    /// Must not exceed the largest range in the fleet's config (the
    /// channel's bucket geometry is sized from the maximum).
    pub range_m: Option<f64>,
    /// GPS position-error sigma in meters.  `0.0` (the default) performs
    /// no draws, leaving homogeneous-run digests untouched; a positive
    /// sigma offsets the position this host *reports* (grid membership,
    /// protocol beacons) without moving its physical radio.
    pub gps_sigma_m: f64,
    /// Scenario group index for per-group metric attribution (0 when the
    /// fleet was not built from a scenario file).
    pub group: u16,
}

impl HostSetup {
    /// A paper-default host (500 J, GPS profile) following `trace`.
    pub fn paper(trace: MobilityTrace) -> Self {
        HostSetup {
            profile: PowerProfile::paper_default(),
            battery: Battery::paper_default(),
            trace,
            range_m: None,
            gps_sigma_m: 0.0,
            group: 0,
        }
    }

    /// A Model-1 endpoint: infinite energy (excluded from alive/aen
    /// metrics).
    pub fn infinite(trace: MobilityTrace) -> Self {
        HostSetup {
            profile: PowerProfile::paper_default(),
            battery: Battery::infinite(),
            trace,
            range_m: None,
            gps_sigma_m: 0.0,
            group: 0,
        }
    }

    /// Same host with an explicit battery.
    pub fn with_battery(mut self, battery: Battery) -> Self {
        self.battery = battery;
        self
    }

    /// Same host with a per-host radio range.
    pub fn with_range(mut self, range_m: f64) -> Self {
        self.range_m = Some(range_m);
        self
    }

    /// Same host with a GPS error sigma.
    pub fn with_gps_sigma(mut self, sigma_m: f64) -> Self {
        self.gps_sigma_m = sigma_m;
        self
    }

    /// Same host tagged with a scenario group index.
    pub fn with_group(mut self, group: u16) -> Self {
        self.group = group;
        self
    }
}
