//! The protocol trait every routing scheme implements.

use crate::ctx::{AppPacket, Ctx};
use radio::{FrameKind, NodeId, PageSignal};
use std::fmt;

/// Wire size of a protocol message payload, in bytes above the MAC.
///
/// Faithful sizes matter: serialization delay sets per-hop latency, and
/// time-on-air sets transmit/receive energy.  Implementations should count
/// the fields a real packet would carry (ids 4 B, coordinates 4 B,
/// sequence numbers 4 B, a routing-table entry 12 B, …).
pub trait WireSize {
    fn wire_bytes(&self) -> u32;
}

/// A routing protocol instance living on one host.
///
/// One value of the implementing type exists per host; it communicates
/// with its peers *only* through frames and pages — there is no shared
/// state, exactly like processes on physical nodes.
pub trait Protocol: Sized + 'static {
    /// The protocol's message payload carried in frames.
    type Msg: Clone + WireSize + fmt::Debug;
    /// The protocol's timer tokens.
    type Timer: Clone + fmt::Debug;

    /// Called once when the simulation starts (host is awake, t = 0).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>);

    /// A frame from `src` was successfully received.
    fn on_frame(&mut self, ctx: &mut Ctx<'_, Self>, src: NodeId, kind: FrameKind, msg: &Self::Msg);

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Self::Timer);

    /// The RAS paging receiver woke this host (the World has already
    /// switched the transceiver on).  `signal` tells which sequence was
    /// paged: the host's own id or the grid's broadcast sequence.
    fn on_page(&mut self, ctx: &mut Ctx<'_, Self>, signal: PageSignal) {
        let _ = (ctx, signal);
    }

    /// An awake host's GPS observed a grid-boundary crossing.
    fn on_cell_change(&mut self, ctx: &mut Ctx<'_, Self>, old: geo::GridCoord, new: geo::GridCoord) {
        let _ = (ctx, old, new);
    }

    /// The host's application emits a data packet for `dst`.
    fn on_app_send(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, packet: AppPacket);

    /// The MAC dropped a unicast to `dst` after exhausting retries.
    fn on_unicast_failed(&mut self, ctx: &mut Ctx<'_, Self>, dst: NodeId, msg: &Self::Msg) {
        let _ = (ctx, dst, msg);
    }
}
