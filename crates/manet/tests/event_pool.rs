//! The pooled scheduler seen from the framework level: the World's event
//! slab must account for every event the run dispatches, and its
//! high-water mark must agree with the independently-measured
//! `SchedProfile` queue depth.

use manet::testkit::{Probe, ProbeCfg};
use manet::trace::TraceMode;
use manet::{Backend, FlowSet, HostSetup, NodeId, SimTime, World, WorldConfig};
use mobility::{MobilityModel, RandomWaypoint};
use sim_engine::RngFactory;
use traffic::FlowSpec;

const HORIZON: SimTime = SimTime(200_000_000_000); // 200 s

/// A busy little world: movers, CBR traffic, timers — enough churn that
/// the slab recycles slots many times over.
fn busy_world(backend: Backend) -> World<Probe> {
    busy_world_sharded(backend, None)
}

fn busy_world_sharded(backend: Backend, shards: Option<usize>) -> World<Probe> {
    let n = 20;
    let rngs = RngFactory::new(5);
    let model = RandomWaypoint::paper(2.0, 0.0);
    let hosts: Vec<HostSetup> = (0..n)
        .map(|i| HostSetup::paper(model.build_trace(&mut rngs.stream("mobility", i as u64), HORIZON)))
        .collect();
    let ids: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let spec = FlowSpec {
        n_flows: 4,
        packet_bytes: 256,
        rate_pps: 2.0,
        start: SimTime::from_secs(1),
        stop: SimTime::from_secs(100),
        stagger: true,
    };
    let flows = FlowSet::random(&mut rngs.stream("traffic", 0), &ids, &spec);
    let mut cfg = WorldConfig::paper_default(5).with_backend(backend);
    if let Some(k) = shards {
        cfg = cfg.with_parallel_world(k);
    }
    let mut w = World::new(cfg, hosts, flows, |_| {
        Probe::new(ProbeCfg {
            timer_at_start: Some((0.5, 1)),
            ..Default::default()
        })
    });
    w.enable_trace(TraceMode::DigestOnly);
    w
}

#[test]
fn pool_high_water_agrees_with_the_sched_profile() {
    let mut w = busy_world(Backend::Heap);
    w.run_until(SimTime::from_secs(100));
    let pool = w.event_pool_stats();
    let rec = w.take_recorder().expect("tracing was enabled");
    let prof = rec.profile();
    // The profile observes queue depth immediately after every pop — so
    // its maximum is one below the true peak (the pop that consumed the
    // peak observed peak-1, and no later observation can exceed that).
    // The pool's high-water mark IS the true peak: live slots == pending
    // events at every instant.
    assert_eq!(
        pool.high_water,
        prof.max_queue_depth + 1,
        "slab high-water disagrees with the profiled queue depth: {pool:?}"
    );
    assert!(
        pool.allocated > 10 * pool.high_water as u64,
        "the run must recycle slots many times over: {pool:?}"
    );
}

#[test]
fn pool_accounting_balances_at_end_of_run() {
    let mut w = busy_world(Backend::Heap);
    w.run_until(SimTime::from_secs(100));
    let pool = w.event_pool_stats();
    // every slot is either freed or still live (events scheduled past the
    // end of the run stay pending — run_until stops at EndOfRun, it does
    // not drain)
    assert_eq!(pool.allocated, pool.freed + pool.live as u64, "{pool:?}");
    assert!(pool.capacity >= pool.high_water, "{pool:?}");
    // identical advance, identical books
    let mut w2 = busy_world(Backend::Heap);
    w2.run_until(SimTime::from_secs(100));
    assert_eq!(format!("{:?}", w2.event_pool_stats()), format!("{pool:?}"));
}

#[test]
fn pool_books_are_backend_independent() {
    // Both pending-set backends pop the same events in the same order, so
    // the slab sees the same alloc/free sequence: every statistic matches.
    let mut heap = busy_world(Backend::Heap);
    let mut cal = busy_world(Backend::Calendar);
    heap.run_until(SimTime::from_secs(100));
    cal.run_until(SimTime::from_secs(100));
    let (h, c) = (heap.event_pool_stats(), cal.event_pool_stats());
    assert_eq!(h.allocated, c.allocated);
    assert_eq!(h.freed, c.freed);
    assert_eq!(h.live, c.live);
    assert_eq!(h.high_water, c.high_water);
    let hd = heap.take_recorder().unwrap().digest();
    let cd = cal.take_recorder().unwrap().digest();
    assert_eq!(hd, cd, "backends diverged");
}

#[test]
fn reserved_slab_never_grows_on_a_paper_scale_run() {
    // World::new pre-sizes the slab from the profiled shape of paper-scale
    // runs (≈2 pending events per host); the steady state must live
    // inside the reservation with no mid-run slab growth.
    let mut w = busy_world(Backend::Heap);
    let before = w.event_pool_stats().capacity;
    w.run_until(SimTime::from_secs(100));
    let after = w.event_pool_stats();
    assert_eq!(
        before, after.capacity,
        "slab grew mid-run past its reservation: {after:?}"
    );
    assert!(after.high_water <= before, "{after:?}");
}

#[test]
fn pool_invariants_hold_across_shard_counts() {
    // The sharded engine keeps one slab per strip but reports aggregated
    // books and a *globally* tracked high-water mark — so every invariant
    // the serial tests pin must survive K > 1 unchanged: the high water
    // agrees with the profiled queue depth, the books balance, no slab
    // grows mid-run, and (the whole point) the digest matches serial.
    let mut serial = busy_world(Backend::Heap);
    serial.run_until(SimTime::from_secs(100));
    let want = serial.event_pool_stats();
    let want_digest = serial.take_recorder().unwrap().digest();
    for k in [2, 4, 7] {
        let mut w = busy_world_sharded(Backend::Heap, Some(k));
        let before = w.event_pool_stats().capacity;
        w.run_until(SimTime::from_secs(100));
        let pool = w.event_pool_stats();
        let rec = w.take_recorder().unwrap();
        let prof = rec.profile();
        assert_eq!(
            pool.high_water,
            prof.max_queue_depth + 1,
            "K={k}: aggregated high water disagrees with the profiled depth: {pool:?}"
        );
        assert_eq!(pool.allocated, pool.freed + pool.live as u64, "K={k}: {pool:?}");
        assert_eq!(
            pool.capacity, before,
            "K={k}: a shard slab grew mid-run: {pool:?}"
        );
        // same dispatch order, same alloc/free sequence, same totals
        assert_eq!(pool.allocated, want.allocated, "K={k}");
        assert_eq!(pool.high_water, want.high_water, "K={k}");
        assert_eq!(rec.digest(), want_digest, "K={k}: sharded run diverged");
    }
}
