//! Integration tests for the simulation framework, driven by the
//! instrumented `testkit::Probe` protocol.

use manet::testkit::{Probe, ProbeCfg, ProbeMsg};
use manet::{
    FlowSet, GridCoord, HostSetup, NodeId, PageSignal, RadioMode, SimDuration, SimTime, World, WorldConfig,
};
use mobility::{MobilityTrace, Segment};
use traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(3_000_000_000_000); // 3000 s

fn fixed(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(geo::Point2::new(x, y), HORIZON))
}

fn world_with(hosts: Vec<HostSetup>, cfgs: Vec<ProbeCfg>, flows: FlowSet) -> World<Probe> {
    assert_eq!(hosts.len(), cfgs.len());
    World::new(WorldConfig::paper_default(42), hosts, flows, move |id| {
        Probe::new(cfgs[id.index()].clone())
    })
}

#[test]
fn broadcast_reaches_in_range_awake_hosts_only() {
    // node 0 at origin broadcasts; node 1 at 100 m (in range), node 2 at
    // 600 m (out of range), node 3 in range but asleep
    let hosts = vec![
        fixed(50.0, 50.0),
        fixed(150.0, 50.0),
        fixed(650.0, 50.0),
        fixed(50.0, 150.0),
    ];
    let cfgs = vec![
        ProbeCfg {
            broadcast_at_start: Some((7, 64)),
            ..Default::default()
        },
        ProbeCfg::default(),
        ProbeCfg::default(),
        ProbeCfg {
            sleep_at_start: true,
            ..Default::default()
        },
    ];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(1));
    assert_eq!(w.protocol(NodeId(1)).heard.len(), 1);
    assert_eq!(w.protocol(NodeId(1)).heard[0].0, NodeId(0));
    assert!(w.protocol(NodeId(2)).heard.is_empty(), "out of range");
    assert!(w.protocol(NodeId(3)).heard.is_empty(), "asleep");
    assert_eq!(w.stats().broadcasts, 1);
    assert_eq!(w.stats().frames_delivered, 1);
}

#[test]
fn unicast_is_acked_without_retransmission() {
    let hosts = vec![fixed(50.0, 50.0), fixed(150.0, 50.0)];
    let cfgs = vec![
        ProbeCfg {
            unicast_at_start: Some((NodeId(1), 9, 128)),
            ..Default::default()
        },
        ProbeCfg::default(),
    ];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(1));
    assert_eq!(
        w.protocol(NodeId(1)).heard,
        vec![(NodeId(0), ProbeMsg::Tag { tag: 9, bytes: 128 })]
    );
    assert_eq!(w.stats().unicasts, 1);
    assert_eq!(w.stats().retransmissions, 0);
    assert_eq!(w.stats().mac_drops, 0);
    assert!(w.protocol(NodeId(0)).failed_unicasts.is_empty());
}

#[test]
fn unicast_to_sleeping_host_retries_then_fails() {
    let hosts = vec![fixed(50.0, 50.0), fixed(150.0, 50.0)];
    let cfgs = vec![
        ProbeCfg {
            unicast_at_start: Some((NodeId(1), 9, 128)),
            ..Default::default()
        },
        ProbeCfg {
            sleep_at_start: true,
            ..Default::default()
        },
    ];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(2));
    assert!(w.protocol(NodeId(1)).heard.is_empty());
    assert_eq!(w.protocol(NodeId(0)).failed_unicasts, vec![NodeId(1)]);
    assert_eq!(w.stats().mac_drops, 1);
    // max_retries retransmissions were attempted
    assert_eq!(
        w.stats().retransmissions as u32,
        manet::MacConfig::paper_default().max_retries
    );
}

#[test]
fn ras_page_wakes_a_sleeping_host() {
    let hosts = vec![fixed(50.0, 50.0), fixed(150.0, 50.0)];
    let cfgs = vec![
        ProbeCfg {
            page_host_at_start: Some(NodeId(1)),
            ..Default::default()
        },
        ProbeCfg {
            sleep_at_start: true,
            ..Default::default()
        },
    ];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(1));
    assert_eq!(w.node_mode(NodeId(1)), RadioMode::Idle);
    assert_eq!(w.protocol(NodeId(1)).pages, vec![PageSignal::Host(NodeId(1))]);
    assert_eq!(w.stats().pages_sent, 1);
    assert_eq!(w.stats().pages_woken, 1);
}

#[test]
fn ras_grid_page_wakes_everyone_in_the_grid() {
    // nodes 1 and 2 share grid (1,0) and sleep; node 3 sleeps in (5,5)
    let hosts = vec![
        fixed(50.0, 50.0),
        fixed(120.0, 50.0),
        fixed(180.0, 50.0),
        fixed(550.0, 550.0),
    ];
    let cfgs = vec![
        ProbeCfg {
            page_grid_at_start: Some(GridCoord::new(1, 0)),
            ..Default::default()
        },
        ProbeCfg {
            sleep_at_start: true,
            ..Default::default()
        },
        ProbeCfg {
            sleep_at_start: true,
            ..Default::default()
        },
        ProbeCfg {
            sleep_at_start: true,
            ..Default::default()
        },
    ];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(1));
    assert_eq!(w.node_mode(NodeId(1)), RadioMode::Idle);
    assert_eq!(w.node_mode(NodeId(2)), RadioMode::Idle);
    assert_eq!(
        w.node_mode(NodeId(3)),
        RadioMode::Sleep,
        "other grid stays asleep"
    );
    assert_eq!(w.stats().pages_woken, 2);
}

#[test]
fn hidden_terminal_broadcasts_collide_at_common_receiver() {
    // classic hidden terminal: 0 and 2 cannot carrier-sense each other
    // (480 m apart) but both reach 1 (240 m each); both broadcast at t=0,
    // the transmissions overlap at 1 -> both corrupted.  The frames are
    // sized so their airtime (2048 B ~ 8.2 ms at 2 Mb/s) exceeds the
    // widest possible broadcast backoff spread (255 slots ~ 5.1 ms), so
    // the overlap is guaranteed for every backoff draw.
    let hosts = vec![fixed(10.0, 50.0), fixed(250.0, 50.0), fixed(490.0, 50.0)];
    let cfgs = vec![
        ProbeCfg {
            broadcast_at_start: Some((1, 2048)),
            ..Default::default()
        },
        ProbeCfg::default(),
        ProbeCfg {
            broadcast_at_start: Some((2, 2048)),
            ..Default::default()
        },
    ];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(1));
    assert!(
        w.protocol(NodeId(1)).heard.is_empty(),
        "collision should corrupt both"
    );
    assert!(w.stats().corrupted >= 2);
}

#[test]
fn idle_host_dies_at_paper_lifetime_and_sleeper_survives() {
    let hosts = vec![fixed(50.0, 50.0), fixed(850.0, 850.0)];
    let cfgs = vec![
        ProbeCfg::default(),
        ProbeCfg {
            sleep_at_start: true,
            ..Default::default()
        },
    ];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(2000));
    // idle+GPS at 0.863 W drains 500 J in ~579 s
    assert!(!w.node_alive(NodeId(0)));
    assert!(w.node_alive(NodeId(1)), "sleeping host must outlive 2000 s");
    let death = w.alive_series().first_time_at_or_below(0.5).unwrap();
    assert!((570.0..=590.0).contains(&death), "death at {death}");
    // sleeping host: 2000 s * 0.163 W = 326 J consumed
    let j = w.node_consumed_j(NodeId(1));
    assert!((320.0..335.0).contains(&j), "sleeper consumed {j}");
    assert_eq!(w.stats().deaths, 1);
}

#[test]
fn aen_series_tracks_consumption() {
    let hosts = vec![fixed(50.0, 50.0)];
    let cfgs = vec![ProbeCfg::default()];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(101));
    // 100 s idle+GPS = 86.3 J of 500 J => aen ~ 0.1726
    let aen = w.aen_series().value_at(100.0).unwrap();
    assert!((aen - 0.1726).abs() < 0.01, "aen {aen}");
    // monotone non-decreasing
    let pts = w.aen_series().points();
    assert!(pts.windows(2).all(|p| p[1].value >= p[0].value));
}

#[test]
fn timers_fire_in_order() {
    let hosts = vec![fixed(50.0, 50.0)];
    let cfgs = vec![ProbeCfg {
        timer_at_start: Some((0.5, 77)),
        ..Default::default()
    }];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(1));
    assert_eq!(w.protocol(NodeId(0)).fired_timers, vec![77]);
    assert_eq!(w.stats().timers_fired, 1);
}

#[test]
fn awake_mover_sees_cell_changes_sleeper_does_not() {
    // both hosts travel east from (50,50) to (450,50) at 10 m/s: 4 crossings
    let leg = Segment::travel(
        SimTime::ZERO,
        geo::Point2::new(50.0, 50.0),
        geo::Point2::new(450.0, 50.0),
        10.0,
    );
    let rest = Segment::rest(leg.end, HORIZON, leg.end_position());
    let trace = MobilityTrace::new(vec![leg, rest]);
    let hosts = vec![HostSetup::paper(trace.clone()), HostSetup::paper(trace)];
    let cfgs = vec![
        ProbeCfg::default(),
        ProbeCfg {
            sleep_at_start: true,
            ..Default::default()
        },
    ];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(60));
    assert_eq!(w.protocol(NodeId(0)).cell_changes.len(), 4);
    assert_eq!(
        w.protocol(NodeId(0)).cell_changes[0],
        (GridCoord::new(0, 0), GridCoord::new(1, 0))
    );
    assert!(
        w.protocol(NodeId(1)).cell_changes.is_empty(),
        "sleepers don't observe GPS"
    );
    // ...but the world still tracks the sleeper's true cell
    assert_eq!(w.node_cell(NodeId(1)), GridCoord::new(4, 0));
}

#[test]
fn app_flow_delivers_end_to_end() {
    let hosts = vec![fixed(50.0, 50.0), fixed(150.0, 50.0)];
    let cfgs = vec![ProbeCfg::default(), ProbeCfg::default()];
    let flow = CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(1),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(1),
        stop: SimTime::from_secs(11),
        burst: None,
    };
    let mut w = world_with(hosts, cfgs, FlowSet::new(vec![flow]));
    w.run_until(SimTime::from_secs(20));
    let ledger = w.ledger();
    assert_eq!(ledger.sent_count(), 10);
    assert_eq!(ledger.delivered_count(), 10);
    assert_eq!(ledger.delivery_rate(), Some(1.0));
    // single hop: ~2.3 ms airtime + DIFS
    let lat = ledger.mean_latency_ms().unwrap();
    assert!((2.0..4.0).contains(&lat), "latency {lat} ms");
}

#[test]
fn flow_stops_when_source_dies() {
    // source has a finite battery and dies at ~579 s; 1 pkt/s flow for 1000 s
    let hosts = vec![fixed(50.0, 50.0), fixed(150.0, 50.0)];
    let cfgs = vec![ProbeCfg::default(), ProbeCfg::default()];
    let flow = CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(1),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(0),
        stop: SimTime::from_secs(1000),
        burst: None,
    };
    let mut w = world_with(hosts, cfgs, FlowSet::new(vec![flow]));
    w.run_until(SimTime::from_secs(1000));
    let sent = w.ledger().sent_count();
    assert!(
        (550..600).contains(&(sent as i64)),
        "sent {sent} packets before dying"
    );
}

#[test]
fn infinite_battery_hosts_are_excluded_from_metrics() {
    let t1 = MobilityTrace::stationary(geo::Point2::new(50.0, 50.0), HORIZON);
    let t2 = MobilityTrace::stationary(geo::Point2::new(150.0, 50.0), HORIZON);
    let hosts = vec![HostSetup::infinite(t1), HostSetup::paper(t2)];
    let cfgs = vec![ProbeCfg::default(), ProbeCfg::default()];
    let mut w = world_with(hosts, cfgs, FlowSet::default());
    w.run_until(SimTime::from_secs(1000));
    assert!(w.node_alive(NodeId(0)), "infinite host lives");
    assert!(!w.node_alive(NodeId(1)));
    // alive fraction counts only the finite host
    assert_eq!(w.alive_fraction(), 0.0);
}

#[test]
fn runs_are_deterministic_per_seed() {
    let build = || {
        let hosts = vec![
            fixed(50.0, 50.0),
            fixed(150.0, 50.0),
            fixed(250.0, 50.0),
            fixed(150.0, 150.0),
        ];
        let cfgs = vec![
            ProbeCfg {
                broadcast_at_start: Some((1, 256)),
                timer_at_start: Some((0.25, 5)),
                ..Default::default()
            },
            ProbeCfg {
                unicast_at_start: Some((NodeId(2), 2, 128)),
                ..Default::default()
            },
            ProbeCfg {
                broadcast_at_start: Some((3, 512)),
                ..Default::default()
            },
            ProbeCfg::default(),
        ];
        let flow = CbrFlow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(3),
            packet_bytes: 512,
            interval: SimDuration::from_millis(100),
            start: SimTime::from_secs(1),
            stop: SimTime::from_secs(30),
            burst: None,
        };
        let mut w = world_with(hosts, cfgs, FlowSet::new(vec![flow]));
        w.run_until(SimTime::from_secs(40));
        (
            *w.stats(),
            w.ledger().sent_count(),
            w.ledger().delivered_count(),
            w.ledger().mean_latency_ms(),
            (0..4).map(|i| w.node_consumed_j(NodeId(i))).collect::<Vec<_>>(),
        )
    };
    let a = build();
    let b = build();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
    assert_eq!(a.4, b.4);
}

#[test]
fn transmitting_costs_more_than_idling() {
    let hosts = vec![fixed(50.0, 50.0), fixed(150.0, 50.0)];
    let cfgs = vec![ProbeCfg::default(), ProbeCfg::default()];
    let flow = CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(1),
        packet_bytes: 512,
        interval: SimDuration::from_millis(50), // 20 pkt/s, heavy
        start: SimTime::ZERO,
        stop: SimTime::from_secs(100),
        burst: None,
    };
    let mut w = world_with(hosts, cfgs, FlowSet::new(vec![flow]));
    w.run_until(SimTime::from_secs(100));
    let sender = w.node_consumed_j(NodeId(0));
    let idle_baseline = 100.0 * 0.863;
    assert!(
        sender > idle_baseline + 1.0,
        "sender {sender} J vs idle {idle_baseline} J"
    );
    // receiver also pays reception energy above idle
    let receiver = w.node_consumed_j(NodeId(1));
    assert!(receiver > idle_baseline + 0.5, "receiver {receiver} J");
}
