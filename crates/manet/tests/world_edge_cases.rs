//! Edge-case tests for the simulation framework: queue caps, crash
//! injection, sleeping-sender semantics, trace logging.

use manet::testkit::{Probe, ProbeCfg, ProbeMsg};
use manet::{FlowSet, HostSetup, NodeId, RadioMode, SimTime, World, WorldConfig};
use mobility::MobilityTrace;

const HORIZON: SimTime = SimTime(3_000_000_000_000);

fn fixed(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(geo::Point2::new(x, y), HORIZON))
}

fn world_with(hosts: Vec<HostSetup>, cfgs: Vec<ProbeCfg>) -> World<Probe> {
    World::new(
        WorldConfig::paper_default(42),
        hosts,
        FlowSet::default(),
        move |id| Probe::new(cfgs[id.index()].clone()),
    )
}

#[test]
fn kill_node_is_immediate_and_final() {
    let mut w = world_with(
        vec![fixed(50.0, 50.0), fixed(150.0, 50.0)],
        vec![ProbeCfg::default(); 2],
    );
    w.run_until(SimTime::from_secs(5));
    assert!(w.node_alive(NodeId(0)));
    w.kill_node(NodeId(0));
    assert!(!w.node_alive(NodeId(0)));
    assert_eq!(w.node_mode(NodeId(0)), RadioMode::Off);
    let consumed = w.node_consumed_j(NodeId(0));
    w.run_until(SimTime::from_secs(100));
    assert!(!w.node_alive(NodeId(0)), "death is permanent");
    assert_eq!(w.node_consumed_j(NodeId(0)), consumed, "the dead draw nothing");
    assert_eq!(w.alive_fraction(), 0.5);
    assert_eq!(w.stats().deaths, 1);
}

#[test]
#[should_panic(expected = "infinite-energy")]
fn killing_an_infinite_host_panics() {
    let mut hosts = vec![fixed(50.0, 50.0)];
    hosts[0].battery = manet::Battery::infinite();
    let mut w = world_with(hosts, vec![ProbeCfg::default()]);
    w.run_until(SimTime::from_secs(1));
    w.kill_node(NodeId(0));
}

#[test]
fn dead_nodes_receive_nothing_and_send_nothing() {
    let cfgs = vec![
        ProbeCfg::default(),
        ProbeCfg {
            broadcast_at_start: Some((5, 64)),
            ..Default::default()
        },
    ];
    let mut w = world_with(vec![fixed(50.0, 50.0), fixed(150.0, 50.0)], cfgs);
    w.run_until(SimTime::from_secs(1));
    w.kill_node(NodeId(0));
    let heard_before = w.protocol(NodeId(0)).heard.len();
    // node 1 keeps broadcasting via its timers? (no — one-shot) so drive
    // another frame through a new world tick: nothing should arrive at 0
    w.run_until(SimTime::from_secs(10));
    assert_eq!(w.protocol(NodeId(0)).heard.len(), heard_before);
}

#[test]
fn frames_sent_while_sleeping_are_dropped_not_queued() {
    // probe sleeps at start, then its timer fires at t=1 and (through the
    // testkit) does nothing; we abuse unicast_at_start ordering: sleep
    // command applies after the send (same callback), so the send is
    // accepted while awake.  Instead, test the reverse path: a frame
    // enqueued while ASLEEP must be dropped (mac_drops counts it).
    // The testkit cannot send while asleep directly, so verify via stats
    // that sleeping senders produce no traffic.
    let cfgs = vec![
        ProbeCfg {
            sleep_at_start: true,
            timer_at_start: Some((1.0, 7)),
            ..Default::default()
        },
        ProbeCfg::default(),
    ];
    let mut w = world_with(vec![fixed(50.0, 50.0), fixed(150.0, 50.0)], cfgs);
    w.run_until(SimTime::from_secs(5));
    assert_eq!(
        w.protocol(NodeId(0)).fired_timers,
        vec![7],
        "timers fire during sleep"
    );
    assert_eq!(
        w.node_mode(NodeId(0)),
        RadioMode::Sleep,
        "handler did not wake the radio"
    );
    assert_eq!(w.stats().tx_started, 0);
}

#[test]
fn trace_log_records_system_events() {
    let mut hosts = vec![fixed(50.0, 50.0)];
    hosts[0].battery = manet::Battery::with_capacity(5.0); // dies in ~6 s
    let mut w = world_with(hosts, vec![ProbeCfg::default()]);
    w.enable_tracing();
    w.run_until(SimTime::from_secs(30));
    assert!(!w.node_alive(NodeId(0)));
    let log = w.trace_log();
    assert!(
        log.iter()
            .any(|(_, n, s)| *n == NodeId(0) && s.contains("battery exhausted")),
        "death must be logged: {log:?}"
    );
}

#[test]
fn unicast_retry_energy_is_charged_to_the_sender() {
    // sending into a sleeping host costs the sender five retransmissions
    let cfgs = vec![
        ProbeCfg {
            unicast_at_start: Some((NodeId(1), 1, 512)),
            ..Default::default()
        },
        ProbeCfg {
            sleep_at_start: true,
            ..Default::default()
        },
    ];
    let mut w = world_with(vec![fixed(50.0, 50.0), fixed(150.0, 50.0)], cfgs);
    w.run_until(SimTime::from_secs(2));
    let audit = w.node_energy_audit(NodeId(0));
    // 6 transmissions (1 + 5 retries) of a 564-byte frame ≈ 6 × 2.26 ms
    assert!(
        (0.012..0.016).contains(&audit.tx_secs),
        "expected ~13.5 ms of tx time, got {} s",
        audit.tx_secs
    );
    assert_eq!(w.stats().retransmissions, 5);
    assert_eq!(w.stats().mac_drops, 1);
}

#[test]
fn audit_totals_match_consumed_energy() {
    let cfgs = vec![
        ProbeCfg {
            broadcast_at_start: Some((1, 256)),
            ..Default::default()
        },
        ProbeCfg {
            sleep_at_start: true,
            ..Default::default()
        },
        ProbeCfg::default(),
    ];
    let mut w = world_with(
        vec![fixed(50.0, 50.0), fixed(150.0, 50.0), fixed(100.0, 100.0)],
        cfgs,
    );
    w.run_until(SimTime::from_secs(50));
    for i in 0..3u32 {
        let audit = w.node_energy_audit(NodeId(i));
        let consumed = w.node_consumed_j(NodeId(i));
        assert!(
            (audit.total_j() - consumed).abs() < 1e-6,
            "node {i}: audit {} vs consumed {consumed}",
            audit.total_j()
        );
    }
    // the sleeper spent essentially all its time asleep
    let sleeper = w.node_energy_audit(NodeId(1));
    assert!(sleeper.sleep_secs > 49.0, "{sleeper:?}");
    let _ = ProbeMsg::Tag { tag: 0, bytes: 0 };
}

#[test]
fn event_trace_captures_a_packet_journey() {
    use manet::EventKind;
    use sim_engine::SimDuration;
    use traffic::{CbrFlow, FlowId, FlowSet};
    let hosts = vec![fixed(50.0, 50.0), fixed(150.0, 50.0)];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(1),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(1),
        stop: SimTime::from_secs(2),
        burst: None,
    }]);
    let mut w = World::new(WorldConfig::paper_default(42), hosts, flows, |_| {
        Probe::new(ProbeCfg::default())
    });
    w.enable_event_trace();
    w.run_until(SimTime::from_secs(3));
    let trace = w.event_trace();
    // the journey appears in causal order: app send -> MAC tx -> MAC rx -> app recv
    let idx = |pred: &dyn Fn(&EventKind) -> bool| trace.iter().position(|e| pred(&e.kind));
    let send = idx(&|k| matches!(k, EventKind::PacketSent { src: NodeId(0), .. })).expect("app send");
    let tx = idx(&|k| matches!(k, EventKind::MacTx { node: NodeId(0), .. })).expect("tx");
    let rx = idx(&|k| matches!(k, EventKind::MacRx { node: NodeId(1), .. })).expect("rx");
    let recv = idx(&|k| matches!(k, EventKind::PacketDelivered { node: NodeId(1), .. })).expect("app recv");
    assert!(
        send < tx && tx < rx && rx <= recv,
        "order: {send} {tx} {rx} {recv}"
    );
    // timestamps are non-decreasing through the journey
    assert!(trace[send].t <= trace[tx].t);
    assert!(trace[tx].t <= trace[rx].t);
    // a digest exists and is non-trivial
    let digest = w.trace_digest().expect("recorder enabled");
    assert_ne!(digest.0, 0);
    // and the rendered form is line-per-event
    let text = manet::render_trace(trace);
    assert_eq!(text.lines().count(), trace.len());
}

#[test]
fn spatial_index_matches_geometric_reachability() {
    // scatter probes deterministically; node 0 broadcasts once; exactly
    // the awake in-range nodes must hear it (the spatial index must not
    // miss border cells)
    let mut hosts = Vec::new();
    let mut expected_hearers = Vec::new();
    let origin = geo::Point2::new(500.0, 500.0);
    hosts.push(fixed(500.0, 500.0)); // node 0, sender
    let mut k = 1u32;
    for ring in 1..=8 {
        for arm in 0..8 {
            let theta = arm as f64 * std::f64::consts::TAU / 8.0 + ring as f64 * 0.37;
            let r = ring as f64 * 62.0; // rings at 62..496 m
            let p = geo::Point2::new(500.0 + r * theta.cos(), 500.0 + r * theta.sin());
            if !(0.0..=1000.0).contains(&p.x) || !(0.0..=1000.0).contains(&p.y) {
                continue;
            }
            hosts.push(fixed(p.x, p.y));
            if origin.distance(p) <= 250.0 {
                expected_hearers.push(NodeId(k));
            }
            k += 1;
        }
    }
    let n = hosts.len();
    let mut cfgs = vec![ProbeCfg::default(); n];
    cfgs[0].broadcast_at_start = Some((9, 64));
    let mut w = world_with(hosts, cfgs);
    w.run_until(SimTime::from_secs(1));
    let mut heard: Vec<NodeId> = (1..n as u32)
        .map(NodeId)
        .filter(|id| !w.protocol(*id).heard.is_empty())
        .collect();
    heard.sort();
    expected_hearers.sort();
    assert_eq!(
        heard, expected_hearers,
        "index-based receiver set must equal the geometric one"
    );
    assert!(expected_hearers.len() >= 10, "test needs nontrivial coverage");
}
