//! Watchdog tests: a buggy protocol that perpetually re-arms a timer
//! must terminate within the configured budget with a `BudgetExceeded`
//! diagnostic instead of spinning the event loop forever.

use manet::progress::ProgressProbe;
use manet::{
    AppPacket, Ctx, FlowSet, HostSetup, Protocol, RunBudget, SimDuration, SimTime, WireSize, World,
    WorldConfig,
};
use mobility::MobilityModel;
use radio::{FrameKind, NodeId};
use sim_engine::BudgetExceeded;
use std::sync::Arc;

#[derive(Clone, Debug)]
struct NoMsg;

impl WireSize for NoMsg {
    fn wire_bytes(&self) -> u32 {
        4
    }
}

/// The canonical runaway bug: every timer firing re-arms the next, at a
/// period short enough to dwarf all legitimate traffic.
struct Runaway {
    period: SimDuration,
}

impl Protocol for Runaway {
    type Msg = NoMsg;
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        ctx.set_timer(self.period, ());
    }

    fn on_frame(&mut self, _ctx: &mut Ctx<'_, Self>, _src: NodeId, _kind: FrameKind, _msg: &NoMsg) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, _timer: ()) {
        ctx.set_timer(self.period, ());
    }

    fn on_app_send(&mut self, _ctx: &mut Ctx<'_, Self>, _dst: NodeId, _packet: AppPacket) {}
}

fn runaway_world(budget: RunBudget, period: SimDuration) -> World<Runaway> {
    let cfg = WorldConfig::paper_default(1).with_budget(budget);
    let model = mobility::RandomWaypoint::paper(1.0, 0.0);
    let rngs = sim_engine::RngFactory::new(1);
    let hosts: Vec<HostSetup> = (0..4)
        .map(|i| {
            HostSetup::paper(model.build_trace(&mut rngs.stream("mobility", i), SimTime::from_secs(10_000)))
        })
        .collect();
    World::new(cfg, hosts, FlowSet::default(), move |_| Runaway { period })
}

#[test]
fn event_budget_stops_runaway_timer_loop() {
    let limit = 20_000;
    let budget = RunBudget::default().with_max_events(limit);
    let mut world = runaway_world(budget, SimDuration::from_millis(1));
    let out = world.run_until(SimTime::from_secs(100_000));
    match out.budget_exceeded {
        Some(BudgetExceeded::Events { processed, .. }) => {
            // exactly one event past the limit is dispatched before the
            // check trips
            assert_eq!(processed, limit + 1);
        }
        other => panic!("expected Events budget diagnostic, got {other:?}"),
    }
    assert_eq!(world.budget_exceeded(), out.budget_exceeded);
    // the world is inspectable post-mortem: far less virtual time passed
    // than requested
    assert!(world.now() < SimTime::from_secs(100_000));
}

#[test]
fn virtual_time_budget_caps_long_runs() {
    let cap = SimTime::from_secs(50);
    let budget = RunBudget::default().with_max_sim_time(cap);
    // a modest period: the loop is bounded by virtual time, not count
    let mut world = runaway_world(budget, SimDuration::from_secs(1));
    let out = world.run_until(SimTime::from_secs(100_000));
    match out.budget_exceeded {
        Some(BudgetExceeded::SimTime { now, limit, .. }) => {
            assert_eq!(limit, cap);
            assert!(now > cap);
            // terminated at the first event past the cap, not hours later
            assert!(now <= cap + SimDuration::from_secs(2));
        }
        other => panic!("expected SimTime budget diagnostic, got {other:?}"),
    }
}

#[test]
fn probe_reports_progress_of_budgeted_run() {
    let budget = RunBudget::default().with_max_events(5_000);
    let mut world = runaway_world(budget, SimDuration::from_millis(1));
    world.enable_trace(manet::TraceMode::DigestOnly);
    let probe = Arc::new(ProgressProbe::new());
    world.attach_probe(probe.clone());
    let _ = world.run_until(SimTime::from_secs(100_000));
    assert_eq!(probe.events(), 5_001);
    assert!(probe.virtual_time() > SimTime::ZERO);
    // at least one sample boundary passed, so a partial digest exists
    assert!(probe.partial_digest().is_some());
}

#[test]
fn unlimited_budget_changes_nothing() {
    // same world, bounded only by its end time: completes with no
    // diagnostic
    let mut world = runaway_world(RunBudget::UNLIMITED, SimDuration::from_secs(1));
    let out = world.run_until(SimTime::from_secs(30));
    assert!(out.budget_exceeded.is_none());
    assert_eq!(world.now(), SimTime::from_secs(30));
}
