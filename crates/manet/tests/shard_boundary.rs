//! Shard-boundary behavior of the sharded conservative-sync engine,
//! probed at framework level (the radio-crate unit tests cover the raw
//! channel mirrors; here the whole World is in the loop).
//!
//! The hazards live exactly *on* the strip edges: a transmitter sitting
//! on the boundary between two strips must be heard by the same
//! ascending-id receiver set whichever engine runs the world, and a host
//! whose trace crosses a boundary must migrate shards without its events
//! reordering.  Same boundary-sitter discipline as `tests/spatial_index.rs`.

use manet::testkit::{Probe, ProbeCfg};
use manet::trace::TraceMode;
use manet::{FlowSet, HostSetup, NodeId, SimDuration, SimTime, World, WorldConfig};
use mobility::{MobilityTrace, Segment};
use traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(3_000_000_000_000); // 3000 s

fn fixed(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(geo::Point2::new(x, y), HORIZON))
}

fn boundary_world(shards: Option<usize>) -> World<Probe> {
    // Transmitter 0 sits exactly on x = 500 — the strip boundary for
    // K = 2 (cols 0–4 | 5–9) and an interior edge for K = 4 and 7.
    // Receivers bracket the boundary, including two *exactly* at the
    // 250 m range limit on either side (within_range is inclusive, so
    // both must hear — dropping a boundary sitter in only one engine
    // would change the receiver set and the digest).
    let hosts = vec![
        fixed(500.0, 500.0), // transmitter, on the boundary
        fixed(250.0, 500.0), // exactly at range, west strip
        fixed(750.0, 500.0), // exactly at range, east strip
        fixed(499.0, 500.0), // just west of the boundary
        fixed(501.0, 500.0), // just east of the boundary
        fixed(500.0, 260.0), // north of the transmitter, on the x-boundary
        fixed(950.0, 500.0), // out of range: must stay silent
    ];
    let mut cfgs = vec![ProbeCfg::default(); hosts.len()];
    cfgs[0] = ProbeCfg {
        broadcast_at_start: Some((7, 64)),
        ..Default::default()
    };
    let mut cfg = WorldConfig::paper_default(42);
    if let Some(k) = shards {
        cfg = cfg.with_parallel_world(k);
    }
    let mut w = World::new(cfg, hosts, FlowSet::default(), move |id| {
        Probe::new(cfgs[id.index()].clone())
    });
    w.enable_trace(TraceMode::DigestOnly);
    w
}

#[test]
fn boundary_transmitter_reaches_the_same_receivers_in_both_engines() {
    let mut serial = boundary_world(None);
    serial.run_until(SimTime::from_secs(1));
    let heard_by = |w: &World<Probe>| -> Vec<u32> {
        (1..7u32)
            .filter(|&i| !w.protocol(NodeId(i)).heard.is_empty())
            .collect()
    };
    let want = heard_by(&serial);
    assert_eq!(
        want,
        vec![1, 2, 3, 4, 5],
        "the boundary sitters at exactly 250 m must be included"
    );
    let serial_digest = serial.take_recorder().unwrap().digest();
    for k in [2, 4, 7] {
        let mut w = boundary_world(Some(k));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(
            heard_by(&w),
            want,
            "K={k}: receiver set drifted for a boundary transmitter"
        );
        let stats = w.shard_stats().expect("sharded world reports shard stats");
        assert_eq!(stats.shards, k);
        assert_eq!(
            stats.members.iter().sum::<u32>(),
            7,
            "K={k}: membership counts must cover every host"
        );
        assert!(
            stats.mirrored_tx >= 1,
            "K={k}: a boundary transmission must mirror into the adjacent strip"
        );
        assert_eq!(
            w.take_recorder().unwrap().digest(),
            serial_digest,
            "K={k}: boundary broadcast digest drifted from serial"
        );
    }
}

#[test]
fn a_host_crossing_a_strip_boundary_migrates_between_shards() {
    // Node 1 walks east from (350,500) to (650,500) at 10 m/s, crossing
    // x = 500 at t = 15 s; a 1 pkt/s CBR flow from node 0 keeps traffic
    // flowing to it across the migration.  The crossing must move exactly
    // one member from strip 0 to strip 1 (K = 2) and be invisible in the
    // digest.
    let build = |shards: Option<usize>| {
        let leg = Segment::travel(
            SimTime::ZERO,
            geo::Point2::new(350.0, 500.0),
            geo::Point2::new(650.0, 500.0),
            10.0,
        );
        let rest = Segment::rest(leg.end, HORIZON, leg.end_position());
        let hosts = vec![
            fixed(500.0, 400.0),
            HostSetup::paper(MobilityTrace::new(vec![leg, rest])),
        ];
        let flows = FlowSet::new(vec![CbrFlow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            packet_bytes: 64,
            interval: SimDuration::from_secs(1),
            start: SimTime::from_secs(1),
            stop: SimTime::from_secs(35),
            burst: None,
        }]);
        let mut cfg = WorldConfig::paper_default(42);
        if let Some(k) = shards {
            cfg = cfg.with_parallel_world(k);
        }
        let mut w = World::new(cfg, hosts, flows, |_| Probe::new(ProbeCfg::default()));
        w.enable_trace(TraceMode::DigestOnly);
        w
    };
    let mut serial = build(None);
    serial.run_until(SimTime::from_secs(40));
    assert!(
        serial.shard_stats().is_none(),
        "serial worlds report no shard stats"
    );
    let want_heard = serial.protocol(NodeId(1)).heard.clone();
    assert!(
        want_heard.len() >= 10,
        "the mover must keep hearing traffic across the crossing"
    );
    let serial_digest = serial.take_recorder().unwrap().digest();
    let mut w = build(Some(2));
    w.run_until(SimTime::from_secs(40));
    let stats = w.shard_stats().unwrap();
    assert!(
        stats.migrations >= 1,
        "crossing x=500 must migrate the mover between strips: {stats:?}"
    );
    // node 0 at x=500 lives in column 5 (the east strip) from the start;
    // the mover joins it there after crossing
    assert_eq!(
        stats.members,
        vec![0, 2],
        "both hosts east of the boundary after the move"
    );
    assert!(stats.barriers > 0, "epoch barriers must have fired over 40 s");
    assert_eq!(w.protocol(NodeId(1)).heard, want_heard);
    assert_eq!(w.take_recorder().unwrap().digest(), serial_digest);
}
