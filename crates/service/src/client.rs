//! The client library behind `sweepc`: connect with jittered backoff,
//! submit with shed-aware retry, and stream a job to completion across
//! server restarts and dropped connections.
//!
//! Delivery semantics are deliberately asymmetric: *event* frames are
//! at-most-once (a reconnect window loses whatever was published while
//! disconnected, on top of whatever the server's bounded buffer dropped
//! — both losses are counted, never silent), while the job's terminal
//! `done` summary is effectively at-least-once: a resubscription to a
//! finished job replays it, so [`Client::stream_job`] always ends on a
//! faithful summary or an explicit error.

use crate::backoff::Backoff;
use crate::json;
use crate::proto::{FilterSpec, JobSpec, JobState, Request};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Duration;

#[derive(Clone, Debug)]
pub struct ClientConfig {
    pub addr: String,
    /// Connection attempts per [`Client::ensure_connected`] cycle before
    /// giving up (initial connect and every mid-stream reconnect).
    pub connect_attempts: u32,
    /// Backoff envelope between attempts (see [`Backoff`]).
    pub backoff_base_ms: u64,
    pub backoff_cap_ms: u64,
    /// Jitter seed; fixed seeds make reconnect schedules reproducible.
    pub backoff_seed: u64,
    pub read_timeout_ms: u64,
    pub write_timeout_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7171".into(),
            connect_attempts: 5,
            backoff_base_ms: 100,
            backoff_cap_ms: 5_000,
            backoff_seed: 0,
            read_timeout_ms: 30_000,
            write_timeout_ms: 5_000,
        }
    }
}

impl ClientConfig {
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    pub fn with_backoff(mut self, base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        self.backoff_base_ms = base_ms;
        self.backoff_cap_ms = cap_ms;
        self.backoff_seed = seed;
        self
    }

    pub fn with_connect_attempts(mut self, n: u32) -> Self {
        self.connect_attempts = n.max(1);
        self
    }
}

#[derive(Debug)]
pub enum ClientError {
    /// Transport failed and reconnection attempts were exhausted.
    Io(io::Error),
    /// The server answered, but not with what the protocol promises.
    Protocol(String),
    /// The server refused the request (bad spec, unknown job, draining).
    Rejected(String),
    /// Submission kept being load-shed past the retry limit.
    ShedLimit { attempts: u32 },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Rejected(m) => write!(f, "rejected: {m}"),
            ClientError::ShedLimit { attempts } => {
                write!(f, "load-shed {attempts} times; giving up")
            }
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// What `submit` came back with.
#[derive(Clone, Debug)]
pub enum SubmitOutcome {
    Accepted { job: u64, config: u64 },
    Shed { retry_after_ms: u64 },
}

/// Terminal summary of a streamed job (`done` frame + the subscriber's
/// own `bye` accounting).
#[derive(Clone, Debug, Default)]
pub struct DoneInfo {
    pub job: u64,
    pub state: Option<JobState>,
    pub replicas: u64,
    pub completed: u64,
    pub from_journal: u64,
    pub quarantined: u64,
    /// Per-replica trace digests (hex strings), replica order.
    pub digests: Vec<String>,
    /// Averaged metrics, decoded bit-exactly off the wire.
    pub pdr: Option<f64>,
    pub latency_ms: Option<f64>,
    pub error: Option<String>,
    /// This subscriber's loss accounting (from its final `bye` frame).
    pub delivered: u64,
    pub dropped: u64,
    /// Mid-stream reconnects the client performed.
    pub reconnects: u32,
}

fn parse_done(frame: &str) -> DoneInfo {
    DoneInfo {
        job: json::u64_field(frame, "job").unwrap_or(0),
        state: json::field(frame, "state").and_then(JobState::parse),
        replicas: json::u64_field(frame, "replicas").unwrap_or(0),
        completed: json::u64_field(frame, "completed").unwrap_or(0),
        from_journal: json::u64_field(frame, "from_journal").unwrap_or(0),
        quarantined: json::u64_field(frame, "quarantined").unwrap_or(0),
        digests: json::field(frame, "digests")
            .unwrap_or("")
            .split(';')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect(),
        pdr: json::hex_field(frame, "pdr").map(f64::from_bits),
        latency_ms: json::hex_field(frame, "latency_ms").map(f64::from_bits),
        error: json::field(frame, "error")
            .filter(|e| *e != "null")
            .map(str::to_string),
        ..DoneInfo::default()
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

pub struct Client {
    cfg: ClientConfig,
    backoff: Backoff,
    conn: Option<Conn>,
    reconnects: u32,
}

impl Client {
    /// Build a client and establish the first connection (with backoff).
    pub fn connect(cfg: ClientConfig) -> Result<Client, ClientError> {
        let backoff = Backoff::new(cfg.backoff_base_ms, cfg.backoff_cap_ms, cfg.backoff_seed);
        let mut c = Client {
            cfg,
            backoff,
            conn: None,
            reconnects: 0,
        };
        c.ensure_connected()?;
        Ok(c)
    }

    /// Total mid-stream/mid-request reconnects performed so far.
    pub fn reconnects(&self) -> u32 {
        self.reconnects
    }

    fn dial(&self) -> io::Result<Conn> {
        let stream = TcpStream::connect(&self.cfg.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_millis(self.cfg.read_timeout_ms.max(1))))?;
        stream.set_write_timeout(Some(Duration::from_millis(self.cfg.write_timeout_ms.max(1))))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn {
            reader,
            writer: stream,
        })
    }

    /// Connect if not connected, retrying with jittered exponential
    /// backoff up to `connect_attempts` times.
    pub fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut last: Option<io::Error> = None;
        for attempt in 0..self.cfg.connect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.backoff.next_delay());
            }
            match self.dial() {
                Ok(conn) => {
                    self.conn = Some(conn);
                    self.backoff.reset();
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "no connection attempts made")
        })))
    }

    fn drop_conn(&mut self) {
        self.conn = None;
        self.reconnects = self.reconnects.saturating_add(1);
    }

    /// One request/reply exchange on the current connection.
    fn exchange(&mut self, line: &str) -> io::Result<String> {
        let conn = self
            .conn
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "not connected"))?;
        writeln!(conn.writer, "{line}")?;
        let mut reply = String::new();
        if conn.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        Ok(reply.trim().to_string())
    }

    /// Send a request; on transport failure, reconnect (with backoff) and
    /// retry.  Only safe for idempotent requests — `submit` goes through
    /// [`Client::submit`] instead, which never auto-retries an exchange
    /// whose reply was lost (that could double-enqueue the job).
    pub fn request_idempotent(&mut self, req: &Request) -> Result<String, ClientError> {
        let line = req.encode();
        let mut last: Option<io::Error> = None;
        for _ in 0..self.cfg.connect_attempts.max(1) {
            self.ensure_connected()?;
            match self.exchange(&line) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    last = Some(e);
                    self.drop_conn();
                }
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "request failed")
        })))
    }

    /// Submit once: connect if needed, one exchange, no blind retry.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<SubmitOutcome, ClientError> {
        self.ensure_connected()?;
        let reply = match self.exchange(&Request::Submit(spec.clone()).encode()) {
            Ok(r) => r,
            Err(e) => {
                self.drop_conn();
                return Err(ClientError::Io(e));
            }
        };
        if json::bool_field(&reply, "ok") == Some(true) {
            let job = json::u64_field(&reply, "job")
                .ok_or_else(|| ClientError::Protocol(format!("submit reply without job: {reply}")))?;
            let config = json::hex_field(&reply, "config")
                .ok_or_else(|| ClientError::Protocol(format!("submit reply without config: {reply}")))?;
            Ok(SubmitOutcome::Accepted { job, config })
        } else if json::bool_field(&reply, "shed") == Some(true) {
            Ok(SubmitOutcome::Shed {
                retry_after_ms: json::u64_field(&reply, "retry_after_ms").unwrap_or(500),
            })
        } else {
            Err(ClientError::Rejected(
                json::field(&reply, "error").unwrap_or(&reply).to_string(),
            ))
        }
    }

    /// Submit, honoring shed replies: sleep the server's retry-after hint
    /// (plus client-side jitter) and try again, up to `max_sheds` sheds.
    pub fn submit_until_accepted(
        &mut self,
        spec: &JobSpec,
        max_sheds: u32,
    ) -> Result<(u64, u64), ClientError> {
        let mut sheds = 0;
        loop {
            match self.submit(spec)? {
                SubmitOutcome::Accepted { job, config } => return Ok((job, config)),
                SubmitOutcome::Shed { retry_after_ms } => {
                    sheds += 1;
                    if sheds > max_sheds {
                        return Err(ClientError::ShedLimit { attempts: sheds });
                    }
                    let jitter = self
                        .backoff
                        .next_delay()
                        .min(Duration::from_millis(retry_after_ms));
                    std::thread::sleep(Duration::from_millis(retry_after_ms) + jitter);
                }
            }
        }
    }

    /// Subscribe to `job` and pump frames into `on_frame` until the
    /// terminal summary arrives.  Transport failures mid-stream reconnect
    /// with backoff and resubscribe; a job that finished in the meantime
    /// is resolved through the server's done-replay path.
    pub fn stream_job(
        &mut self,
        job: u64,
        filter: &FilterSpec,
        mut on_frame: impl FnMut(&str),
    ) -> Result<DoneInfo, ClientError> {
        let mut cycles = 0;
        loop {
            cycles += 1;
            if cycles > self.cfg.connect_attempts.max(1) * 4 {
                return Err(ClientError::Protocol("stream kept failing; giving up".into()));
            }
            self.ensure_connected()?;
            let sub = Request::Subscribe {
                job,
                filter: filter.clone(),
            };
            let reply = match self.exchange(&sub.encode()) {
                Ok(r) => r,
                Err(_) => {
                    self.drop_conn();
                    continue;
                }
            };
            if json::bool_field(&reply, "ok") != Some(true) {
                return Err(ClientError::Rejected(
                    json::field(&reply, "error").unwrap_or(&reply).to_string(),
                ));
            }
            match self.pump_stream(&mut on_frame) {
                Ok(Some(mut info)) => {
                    info.reconnects = self.reconnects;
                    return Ok(info);
                }
                Ok(None) | Err(_) => {
                    // stream broke before the summary: reconnect and
                    // resubscribe (replay resolves finished jobs)
                    self.drop_conn();
                    continue;
                }
            }
        }
    }

    /// Read stream frames until `bye` (returning the summary) or a
    /// transport failure (returning `Err`/`Ok(None)`).
    fn pump_stream(&mut self, on_frame: &mut impl FnMut(&str)) -> io::Result<Option<DoneInfo>> {
        let conn = self
            .conn
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "not connected"))?;
        let mut done: Option<DoneInfo> = None;
        loop {
            let mut line = String::new();
            match conn.reader.read_line(&mut line) {
                Ok(0) => return Ok(done), // server closed; summary only if seen
                Ok(_) => {}
                Err(e) => {
                    // if the summary already arrived, a lost bye frame is
                    // not worth a resubscribe
                    return if done.is_some() { Ok(done) } else { Err(e) };
                }
            }
            let frame = line.trim();
            if frame.is_empty() {
                continue;
            }
            on_frame(frame);
            match json::field(frame, "stream") {
                Some("done") => done = Some(parse_done(frame)),
                Some("bye") => {
                    if let Some(info) = &mut done {
                        info.delivered = json::u64_field(frame, "delivered").unwrap_or(0);
                        info.dropped = json::u64_field(frame, "dropped").unwrap_or(0);
                    }
                    return Ok(done);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_to_dead_port_fails_after_bounded_backoff() {
        // bind-then-drop guarantees a port with no listener
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let cfg = ClientConfig::default()
            .with_addr(format!("127.0.0.1:{port}"))
            .with_backoff(1, 4, 7)
            .with_connect_attempts(3);
        let start = std::time::Instant::now();
        match Client::connect(cfg) {
            Err(ClientError::Io(_)) => {}
            Err(other) => panic!("expected Io error, got {other}"),
            Ok(_) => panic!("expected Io error, got a connection"),
        }
        // 3 attempts with ~1-4ms delays: fail fast, not hang
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn done_frame_parses_bit_exact_metrics() {
        let pdr: f64 = 0.1 + 0.2;
        let frame = format!(
            "{{\"stream\":\"done\",\"job\":9,\"state\":\"done\",\"replicas\":3,\"completed\":2,\
             \"from_journal\":1,\"quarantined\":1,\"digests\":\"aa;bb\",\"pdr\":\"{:016x}\",\
             \"latency_ms\":null,\"error\":null}}",
            pdr.to_bits()
        );
        let info = parse_done(&frame);
        assert_eq!(info.job, 9);
        assert_eq!(info.state, Some(JobState::Done));
        assert_eq!(info.digests, vec!["aa", "bb"]);
        assert_eq!(info.pdr.map(f64::to_bits), Some(pdr.to_bits()));
        assert_eq!(info.latency_ms, None);
        assert_eq!(info.error, None);
        assert_eq!(info.quarantined, 1);
    }
}
