//! Resident sweep service: a thread-per-connection TCP job server (plus
//! its client library) that keeps the supervised sweep harness running as
//! a long-lived process instead of a batch binary.
//!
//! The robustness posture mirrors the protocols under test: every shared
//! resource is bounded and every overload path is an *explicit, observable
//! degradation* rather than a hang —
//!
//! * **Admission control** — a bounded job queue; submissions past the
//!   bound get a load-shed reply carrying a retry-after hint, never a
//!   stalled socket ([`server`]).
//! * **Slow subscribers** — per-subscriber bounded buffers that drop and
//!   count frames ([`hub`], [`metrics::DropCounter`]); the simulation
//!   worker never blocks on a consumer.
//! * **Deadlines** — per-connection read/write timeouts, so a dead peer
//!   cannot pin a connection thread forever.
//! * **Graceful shutdown** — drain mode finishes in-flight replicas to
//!   the journal checkpoint, refuses new work, and exits cleanly.
//! * **Crash recovery** — job manifests are written atomically and
//!   fsynced ([`fsutil`]); a restarted server rescans them, requeues
//!   interrupted jobs, and (because results are journal-keyed by
//!   (config-hash, seed)) reproduces them bit for bit.
//!
//! The wire protocol is line-delimited flat JSON ([`proto`], [`json`]) —
//! `std::net` and hand-rolled framing only, no external dependencies.
//! The crate is harness-agnostic: it knows *jobs* ([`JobSpec`]) and a
//! [`JobHandler`] trait, while the ECGRID glue (scenario construction,
//! supervisor invocation) lives in the `runner` crate, which also ships
//! the `sweepd` / `sweepc` binaries.

pub mod backoff;
pub mod client;
pub mod fsutil;
pub mod hub;
pub mod json;
pub mod proto;
pub mod server;

pub use backoff::Backoff;
pub use client::{Client, ClientConfig, ClientError, DoneInfo, SubmitOutcome};
pub use hub::{Hub, SubscriberHandle};
pub use proto::{FilterSpec, JobSpec, JobState, Request};
pub use server::{
    JobCtx, JobHandler, JobOutcome, ReplicaLookup, Server, ServerHandle, ServerSummary, ServiceConfig,
};
