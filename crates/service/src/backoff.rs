//! Jittered exponential backoff for client-side reconnection.
//!
//! Delay for attempt `n` is drawn uniformly from
//! `[base·2ⁿ/2, base·2ⁿ]`, capped at `cap` — "equal jitter", which keeps
//! a floor under the delay (so a flapping server is not hammered) while
//! still decorrelating clients that all lost the same server at the same
//! instant.  The jitter source is a seeded [`SplitMix64`], so a client
//! constructed with a fixed seed backs off reproducibly — tests assert
//! the exact schedule instead of sleeping and hoping.

use sim_engine::SplitMix64;
use std::time::Duration;

#[derive(Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// `base_ms` is the attempt-0 ceiling; delays cap at `cap_ms`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(base_ms.max(1)),
            attempt: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The delay to sleep before the next attempt (and advance the
    /// attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20); // 2^20 · base already dwarfs any cap
        let ceil = self.base_ms.saturating_mul(1u64 << exp).min(self.cap_ms);
        let floor = (ceil / 2).max(1);
        let span = ceil - floor + 1;
        let jitter = self.rng.next_u64() % span;
        self.attempt = self.attempt.saturating_add(1);
        Duration::from_millis(floor + jitter)
    }

    /// Attempts made so far (i.e. `next_delay` calls).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Back to attempt 0 — call after a successful connection.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_stay_within_the_envelope() {
        let mut b = Backoff::new(100, 2_000, 42);
        let mut prev_ceil = 0;
        for n in 0..8 {
            let ceil = (100u64 << n).min(2_000);
            let floor = (ceil / 2).max(1);
            let d = b.next_delay().as_millis() as u64;
            assert!(
                d >= floor && d <= ceil,
                "attempt {n}: {d} outside [{floor},{ceil}]"
            );
            assert!(ceil >= prev_ceil);
            prev_ceil = ceil;
        }
    }

    #[test]
    fn same_seed_same_schedule_distinct_seeds_diverge() {
        let schedule = |seed| {
            let mut b = Backoff::new(50, 5_000, seed);
            (0..6).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8));
    }

    #[test]
    fn reset_restarts_the_envelope() {
        let mut b = Backoff::new(100, 10_000, 1);
        for _ in 0..5 {
            b.next_delay();
        }
        assert_eq!(b.attempts(), 5);
        b.reset();
        assert_eq!(b.attempts(), 0);
        let d = b.next_delay().as_millis() as u64;
        assert!((50..=100).contains(&d));
    }
}
