//! The resident job server: admission control, worker pool, job
//! lifecycle, and the per-connection protocol loop.
//!
//! Threading model (std only, thread-per-connection):
//!
//! * an **accept thread** polls the listener and spawns one detached
//!   thread per connection;
//! * **worker threads** pull job ids from a bounded admission queue and
//!   run them through the pluggable [`JobHandler`];
//! * **connection threads** speak the line protocol; a `subscribe`
//!   switches them into stream mode, pumping frames from their
//!   [`crate::hub::Hub`] buffer until the job's channel closes.
//!
//! Every overload or failure path is explicit: a full queue answers with
//! a load-shed reply (never blocks), a slow subscriber loses frames to
//! its own bounded buffer (never stalls a worker), an idle peer is hung
//! up on after the read deadline, and a drain request
//! ([`Server::request_shutdown`]) stops admission, lets in-flight
//! replicas checkpoint to the journal, marks unstarted jobs
//! `interrupted`, and returns.  Job manifests are written atomically and
//! durably ([`crate::fsutil`]) at every state transition, so a restarted
//! server rescans them and requeues unfinished work
//! ([`JobState::Interrupted`] → [`JobState::Queued`]).

use crate::fsutil;
use crate::hub::Hub;
use crate::json::{self, Obj};
use crate::proto::{self, JobSpec, JobState, Request, PROTO_VERSION};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, ErrorKind, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Server knobs.  Every bound has a deliberate default: the service is
/// never configured unbounded by accident.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads running jobs.
    pub workers: usize,
    /// Admission-queue bound; submissions past it are shed.
    pub capacity: usize,
    /// Per-subscriber stream buffer, in frames.
    pub subscriber_buffer: usize,
    /// Retry hint carried by shed replies.
    pub retry_after_ms: u64,
    /// Per-connection idle read deadline.
    pub read_timeout_ms: u64,
    /// Per-connection write deadline.
    pub write_timeout_ms: u64,
    /// Root for job manifests and the result journal.
    pub state_dir: PathBuf,
    /// Human-readable label of the simulation engine every job runs on
    /// (e.g. `"serial"` or `"sharded k=4 t=2"`), echoed in the `stats`
    /// frame.  The service itself is simulation-agnostic; the label is
    /// whatever the embedding daemon resolved its engine flags to.
    pub engine_label: String,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            capacity: 16,
            subscriber_buffer: 1024,
            retry_after_ms: 500,
            read_timeout_ms: 30_000,
            write_timeout_ms: 5_000,
            state_dir: PathBuf::from("target/sweepd"),
            engine_label: "serial".into(),
        }
    }
}

impl ServiceConfig {
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    pub fn with_capacity(mut self, n: usize) -> Self {
        self.capacity = n.max(1);
        self
    }

    pub fn with_subscriber_buffer(mut self, n: usize) -> Self {
        self.subscriber_buffer = n.max(1);
        self
    }

    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_dir = dir.into();
        self
    }

    pub fn with_read_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout_ms = ms.max(1);
        self
    }

    pub fn with_retry_after_ms(mut self, ms: u64) -> Self {
        self.retry_after_ms = ms;
        self
    }

    pub fn with_engine_label(mut self, label: impl Into<String>) -> Self {
        self.engine_label = label.into();
        self
    }
}

/// What a handler reports back for one finished (or interrupted) job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Terminal state — or [`JobState::Interrupted`] when a drain cut the
    /// job short (the journal checkpoint makes the rerun incremental).
    pub state: JobState,
    /// Replicas completed (fresh + journal-loaded).
    pub replicas_done: u64,
    /// Of those, replicas satisfied from the journal.
    pub from_journal: u64,
    /// Replicas that exhausted retries.
    pub quarantined: u64,
    /// Per-replica trace digests (hex), replica order.
    pub digests: Vec<String>,
    /// Averaged delivery rate over completed replicas (bit-exact wire
    /// encoding).
    pub pdr: Option<f64>,
    /// Averaged mean latency in ms.
    pub latency_ms: Option<f64>,
    /// Journal lines skipped as garbage or duplicates during resume.
    pub malformed_journal_lines: u64,
    pub error: Option<String>,
}

impl JobOutcome {
    /// An outcome for a job that never got to run.
    pub fn interrupted() -> Self {
        JobOutcome {
            state: JobState::Interrupted,
            replicas_done: 0,
            from_journal: 0,
            quarantined: 0,
            digests: Vec::new(),
            pdr: None,
            latency_ms: None,
            malformed_journal_lines: 0,
            error: None,
        }
    }
}

/// What the server hands a [`JobHandler`] for one run.
pub struct JobCtx<'a> {
    pub job: u64,
    /// Set when the server is draining: finish the current replica,
    /// checkpoint, and return [`JobState::Interrupted`].
    pub cancel: &'a AtomicBool,
    /// Publish stream frames here.  Shared (`Arc`) so handlers can hand
    /// owned clones to `'static` event-sink closures.
    pub hub: Arc<Hub>,
    /// Where the journal lives.
    pub state_dir: &'a Path,
}

impl JobCtx<'_> {
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// One replica's journaled result, for the `result` request.
#[derive(Clone, Debug)]
pub struct ReplicaLookup {
    pub digest: Option<String>,
    pub pdr: Option<f64>,
    pub latency_ms: Option<f64>,
}

/// The pluggable harness: the service knows job plumbing, the handler
/// knows how to actually simulate (the ECGRID glue lives in `runner`).
pub trait JobHandler: Send + Sync + 'static {
    /// Hash of everything but the seed that determines a result — the
    /// journal/resume key.  `Err` rejects the spec at submit time.
    fn config_hash(&self, spec: &JobSpec) -> Result<u64, String>;
    /// Run the job, publishing frames via `ctx.hub` and honoring
    /// `ctx.cancel` between replicas.
    fn run(&self, spec: &JobSpec, ctx: &JobCtx<'_>) -> JobOutcome;
    /// Look one journaled replica up by (config-hash, seed).
    fn lookup(&self, state_dir: &Path, config: u64, seed: u64) -> Option<ReplicaLookup>;
}

struct JobRecord {
    spec: JobSpec,
    config: u64,
    state: JobState,
    outcome: Option<JobOutcome>,
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    refused: AtomicU64,
    recovered: AtomicU64,
    interrupted: AtomicU64,
}

struct Inner {
    cfg: ServiceConfig,
    handler: Arc<dyn JobHandler>,
    hub: Arc<Hub>,
    jobs: Mutex<BTreeMap<u64, JobRecord>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    next_job: AtomicU64,
    draining: AtomicBool,
    stats: Stats,
}

/// What `submit` decided.
enum Admission {
    Accepted { job: u64, config: u64 },
    Shed { queued: usize },
    Draining,
    Rejected(String),
}

impl Inner {
    fn manifest_path(&self, job: u64) -> PathBuf {
        self.cfg.state_dir.join("jobs").join(format!("job-{job}.json"))
    }

    fn write_manifest(&self, job: u64, spec: &JobSpec, config: u64, state: JobState) {
        let line = spec
            .encode_onto(
                Obj::new()
                    .u64("v", PROTO_VERSION)
                    .u64("job", job)
                    .raw("config", &format!("\"{config:016x}\""))
                    .str("state", state.name()),
            )
            .finish();
        // manifest writes are best-effort: a failed disk must not take
        // down the server, it only weakens crash recovery
        let _ = fsutil::write_atomic_durable(&self.manifest_path(job), line.as_bytes());
    }

    /// Rescan job manifests after a restart: terminal jobs are
    /// remembered, unfinished ones (queued / running / interrupted at the
    /// moment of the crash) are requeued.
    fn recover(&self) {
        let dir = self.cfg.state_dir.join("jobs");
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return;
        };
        let mut found: Vec<(u64, JobSpec, u64, JobState)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let Some(body) = fsutil::read_lossy(&path) else {
                continue;
            };
            let line = body.trim();
            let (Some(job), Some(state), Some(config)) = (
                json::u64_field(line, "job"),
                json::field(line, "state").and_then(JobState::parse),
                json::hex_field(line, "config"),
            ) else {
                continue; // a garbled manifest is skipped, not fatal
            };
            let Ok(spec) = JobSpec::parse(line) else {
                continue;
            };
            found.push((job, spec, config, state));
        }
        found.sort_by_key(|(job, ..)| *job);
        // lock order: queue before jobs, matching `submit`
        let mut queue = self.queue.lock().expect("queue lock");
        let mut jobs = self.jobs.lock().expect("jobs lock");
        let mut max_id = 0;
        for (job, spec, config, state) in found {
            max_id = max_id.max(job);
            let state = if state.is_terminal() {
                state
            } else {
                // interrupted mid-flight; the journal has its completed
                // replicas, so the rerun picks up where it left off
                self.stats.recovered.fetch_add(1, Ordering::Relaxed);
                queue.push_back(job);
                JobState::Queued
            };
            jobs.insert(
                job,
                JobRecord {
                    spec,
                    config,
                    state,
                    outcome: None,
                },
            );
        }
        self.next_job.store(max_id + 1, Ordering::Relaxed);
        drop(jobs);
        drop(queue);
        self.queue_cv.notify_all();
    }

    fn submit(&self, spec: JobSpec) -> Admission {
        if self.draining.load(Ordering::Relaxed) {
            self.stats.refused.fetch_add(1, Ordering::Relaxed);
            return Admission::Draining;
        }
        let config = match self.handler.config_hash(&spec) {
            Ok(h) => h,
            Err(e) => return Admission::Rejected(e),
        };
        let mut queue = self.queue.lock().expect("queue lock");
        if queue.len() >= self.cfg.capacity {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed { queued: queue.len() };
        }
        let job = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.jobs.lock().expect("jobs lock").insert(
            job,
            JobRecord {
                spec: spec.clone(),
                config,
                state: JobState::Queued,
                outcome: None,
            },
        );
        queue.push_back(job);
        drop(queue);
        self.write_manifest(job, &spec, config, JobState::Queued);
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_cv.notify_one();
        Admission::Accepted { job, config }
    }

    fn run_job(&self, job: u64) {
        let (spec, config) = {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            let Some(rec) = jobs.get_mut(&job) else {
                return;
            };
            rec.state = JobState::Running;
            (rec.spec.clone(), rec.config)
        };
        self.write_manifest(job, &spec, config, JobState::Running);
        self.hub
            .publish_frame(job, &proto::frame_job_state(job, JobState::Running));
        let ctx = JobCtx {
            job,
            cancel: &self.draining,
            hub: self.hub.clone(),
            state_dir: &self.cfg.state_dir,
        };
        let outcome = self.handler.run(&spec, &ctx);
        self.finish_job(job, &spec, config, outcome);
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a job's outcome, persist it, and terminate its streams.
    fn finish_job(&self, job: u64, spec: &JobSpec, config: u64, outcome: JobOutcome) {
        self.write_manifest(job, spec, config, outcome.state);
        if outcome.state == JobState::Interrupted {
            self.stats.interrupted.fetch_add(1, Ordering::Relaxed);
        }
        let done = done_frame(job, spec, &outcome);
        {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            if let Some(rec) = jobs.get_mut(&job) {
                rec.state = outcome.state;
                rec.outcome = Some(outcome);
            }
        }
        self.hub.publish_frame(job, &done);
        self.hub.finish_job(job);
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    // drain check first: a draining server must not start
                    // queued jobs — they stay for interruption marking
                    if self.draining.load(Ordering::Relaxed) {
                        return;
                    }
                    if let Some(j) = queue.pop_front() {
                        break j;
                    }
                    let (q, _) = self
                        .queue_cv
                        .wait_timeout(queue, Duration::from_millis(100))
                        .expect("queue cv");
                    queue = q;
                }
            };
            self.run_job(job);
        }
    }
}

/// The done frame: terminal summary of one job, bit-exact metrics
/// included.
fn done_frame(job: u64, spec: &JobSpec, out: &JobOutcome) -> String {
    let mut o = Obj::new()
        .str("stream", "done")
        .u64("job", job)
        .str("state", out.state.name())
        .u64("replicas", spec.replicas)
        .u64("completed", out.replicas_done)
        .u64("from_journal", out.from_journal)
        .u64("quarantined", out.quarantined)
        .str("digests", &out.digests.join(";"))
        .f64_bits("pdr", out.pdr)
        .f64_bits("latency_ms", out.latency_ms)
        .u64("malformed_journal_lines", out.malformed_journal_lines);
    o = match &out.error {
        Some(e) => o.str("error", e),
        None => o.raw("error", "null"),
    };
    o.finish()
}

/// A running server.  `start` binds and spawns; `wait` blocks until a
/// shutdown request completes the drain.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// A cloneable remote control for a [`Server`] (signal handlers, tests).
#[derive(Clone)]
pub struct ServerHandle(Arc<Inner>);

impl ServerHandle {
    pub fn request_shutdown(&self) {
        self.0.draining.store(true, Ordering::Relaxed);
        self.0.queue_cv.notify_all();
    }

    pub fn is_draining(&self) -> bool {
        self.0.draining.load(Ordering::Relaxed)
    }
}

/// Drain summary returned by [`Server::wait`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerSummary {
    pub submitted: u64,
    pub completed: u64,
    pub shed: u64,
    pub interrupted: u64,
    pub recovered: u64,
    pub events_delivered: u64,
    pub events_dropped: u64,
}

impl Server {
    /// Bind, recover persisted jobs, and spawn the accept + worker
    /// threads.
    pub fn start(cfg: ServiceConfig, handler: Arc<dyn JobHandler>) -> io::Result<Server> {
        std::fs::create_dir_all(cfg.state_dir.join("jobs"))?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            cfg,
            handler,
            hub: Arc::new(Hub::new()),
            jobs: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            next_job: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            stats: Stats::default(),
        });
        inner.recover();
        let accept_inner = inner.clone();
        let accept = thread::Builder::new()
            .name("sweepd-accept".into())
            .spawn(move || accept_loop(accept_inner, listener))?;
        let mut workers = Vec::new();
        for i in 0..inner.cfg.workers.max(1) {
            let w = inner.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("sweepd-worker-{i}"))
                    .spawn(move || w.worker_loop())?,
            );
        }
        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle(self.inner.clone())
    }

    pub fn request_shutdown(&self) {
        self.handle().request_shutdown();
    }

    pub fn is_draining(&self) -> bool {
        self.handle().is_draining()
    }

    /// Block until a shutdown request has fully drained: accept loop
    /// stopped, workers done with their in-flight jobs, leftover queued
    /// jobs marked `interrupted` (resumable on restart), streams closed.
    pub fn wait(mut self) -> ServerSummary {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // whatever is still queued never started; persist that fact so a
        // restart requeues it
        let leftover: Vec<u64> = self.inner.queue.lock().expect("queue lock").drain(..).collect();
        for job in leftover {
            let info = {
                let jobs = self.inner.jobs.lock().expect("jobs lock");
                jobs.get(&job).map(|r| (r.spec.clone(), r.config))
            };
            if let Some((spec, config)) = info {
                self.inner
                    .finish_job(job, &spec, config, JobOutcome::interrupted());
            }
        }
        let s = &self.inner.stats;
        let drops = self.inner.hub.drop_stats();
        ServerSummary {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            interrupted: s.interrupted.load(Ordering::Relaxed),
            recovered: s.recovered.load(Ordering::Relaxed),
            events_delivered: drops.delivered,
            events_dropped: drops.dropped,
        }
    }
}

fn accept_loop(inner: Arc<Inner>, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn = inner.clone();
                // detached: connection threads die with their sockets
                let _ = thread::Builder::new()
                    .name("sweepd-conn".into())
                    .spawn(move || handle_conn(conn, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if inner.draining.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(50));
            }
            Err(_) => {
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn handle_conn(inner: Arc<Inner>, stream: TcpStream) {
    let cfg = &inner.cfg;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms.max(1))));
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut out = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // idle deadline: say why, then hang up — a dead peer must
                // not pin this thread
                let _ = writeln!(out, "{}", proto::reply_err("idle timeout"));
                return;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let req = match Request::parse(trimmed) {
            Ok(r) => r,
            Err(e) => {
                if writeln!(out, "{}", proto::reply_err(&e)).is_err() {
                    return;
                }
                continue;
            }
        };
        let keep_going = match req {
            Request::Subscribe { job, filter } => serve_subscription(&inner, &mut out, job, filter),
            other => {
                let reply = answer(&inner, other);
                writeln!(out, "{reply}").is_ok()
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Answer a plain (non-streaming) request.
fn answer(inner: &Inner, req: Request) -> String {
    match req {
        Request::Ping => proto::reply_ok()
            .str("pong", "sweepd")
            .u64("proto", PROTO_VERSION)
            .bool("draining", inner.draining.load(Ordering::Relaxed))
            .finish(),
        Request::Submit(spec) => {
            let replicas = spec.replicas;
            match inner.submit(spec) {
                Admission::Accepted { job, config } => proto::reply_ok()
                    .u64("job", job)
                    .raw("config", &format!("\"{config:016x}\""))
                    .u64("replicas", replicas)
                    .finish(),
                Admission::Shed { queued } => {
                    proto::reply_shed(inner.cfg.retry_after_ms, queued, inner.cfg.capacity)
                }
                Admission::Draining => proto::reply_err("draining: not accepting new jobs"),
                Admission::Rejected(e) => proto::reply_err(&format!("bad job spec: {e}")),
            }
        }
        Request::Status { job: Some(job) } => {
            let jobs = inner.jobs.lock().expect("jobs lock");
            match jobs.get(&job) {
                None => proto::reply_err(&format!("unknown job {job}")),
                Some(rec) => {
                    let mut o = proto::reply_ok()
                        .u64("job", job)
                        .str("state", rec.state.name())
                        .raw("config", &format!("\"{:016x}\"", rec.config))
                        .u64("replicas", rec.spec.replicas);
                    if let Some(outcome) = &rec.outcome {
                        o = o
                            .u64("completed", outcome.replicas_done)
                            .u64("from_journal", outcome.from_journal)
                            .u64("quarantined", outcome.quarantined)
                            .str("digests", &outcome.digests.join(";"))
                            .f64_bits("pdr", outcome.pdr)
                            .f64_bits("latency_ms", outcome.latency_ms);
                    }
                    o.finish()
                }
            }
        }
        Request::Status { job: None } => {
            let jobs = inner.jobs.lock().expect("jobs lock");
            let count = |s: JobState| jobs.values().filter(|r| r.state == s).count() as u64;
            proto::reply_ok()
                .u64("jobs", jobs.len() as u64)
                .u64("queued", count(JobState::Queued))
                .u64("running", count(JobState::Running))
                .u64("done", count(JobState::Done))
                .u64("quarantined", count(JobState::Quarantined))
                .u64("interrupted", count(JobState::Interrupted))
                .u64("capacity", inner.cfg.capacity as u64)
                .finish()
        }
        Request::Result { config, seed } => match inner.handler.lookup(&inner.cfg.state_dir, config, seed) {
            None => proto::reply_err(&format!("no journaled result for ({config:016x}, {seed})")),
            Some(r) => {
                let mut o = proto::reply_ok()
                    .raw("config", &format!("\"{config:016x}\""))
                    .u64("seed", seed);
                o = match &r.digest {
                    Some(d) => o.str("digest", d),
                    None => o.raw("digest", "null"),
                };
                o.f64_bits("pdr", r.pdr)
                    .f64_bits("latency_ms", r.latency_ms)
                    .finish()
            }
        },
        Request::Stats => {
            let s = &inner.stats;
            let drops = inner.hub.drop_stats();
            let queue_depth = inner.queue.lock().expect("queue lock").len() as u64;
            proto::reply_ok()
                .u64("submitted", s.submitted.load(Ordering::Relaxed))
                .u64("completed", s.completed.load(Ordering::Relaxed))
                .u64("shed", s.shed.load(Ordering::Relaxed))
                .u64("refused", s.refused.load(Ordering::Relaxed))
                .u64("recovered", s.recovered.load(Ordering::Relaxed))
                .u64("queue_depth", queue_depth)
                .u64("capacity", inner.cfg.capacity as u64)
                .u64("subscribers", inner.hub.subscriber_count() as u64)
                .u64("frames_delivered", drops.delivered)
                .u64("frames_dropped", drops.dropped)
                .str("engine", &inner.cfg.engine_label)
                .bool("draining", inner.draining.load(Ordering::Relaxed))
                .finish()
        }
        Request::Shutdown => {
            inner.draining.store(true, Ordering::Relaxed);
            inner.queue_cv.notify_all();
            proto::reply_ok().bool("draining", true).finish()
        }
        Request::Subscribe { .. } => unreachable!("handled by serve_subscription"),
    }
}

/// Stream a job to this connection until its channel closes.  Returns
/// whether the connection is still usable for further requests.
fn serve_subscription(inner: &Inner, out: &mut TcpStream, job: u64, filter: proto::FilterSpec) -> bool {
    let filter = match filter.to_filter() {
        Ok(f) => f,
        Err(e) => return writeln!(out, "{}", proto::reply_err(&e)).is_ok(),
    };
    // subscribe *before* inspecting the state so a job finishing right
    // now cannot slip between the check and the subscription
    let handle = inner.hub.subscribe(job, filter, inner.cfg.subscriber_buffer);
    let snapshot = {
        let jobs = inner.jobs.lock().expect("jobs lock");
        match jobs.get(&job) {
            None => {
                inner.hub.unsubscribe(handle.id);
                return writeln!(out, "{}", proto::reply_err(&format!("unknown job {job}"))).is_ok();
            }
            Some(rec) => rec
                .outcome
                .as_ref()
                .map(|outcome| done_frame(job, &rec.spec, outcome)),
        }
    };
    if writeln!(
        out,
        "{}",
        proto::reply_ok().u64("job", job).str("streaming", "1").finish()
    )
    .is_err()
    {
        inner.hub.unsubscribe(handle.id);
        return false;
    }
    if let Some(done) = snapshot {
        // late subscriber to an already-terminal job: replay the summary
        inner.hub.unsubscribe(handle.id);
        let ok = writeln!(out, "{done}").is_ok() && writeln!(out, "{}", proto::frame_bye(job, 1, 0)).is_ok();
        return ok;
    }
    loop {
        match handle.rx.recv_timeout(Duration::from_millis(200)) {
            Ok(frame) => {
                if writeln!(out, "{frame}").is_err() {
                    // peer died mid-stream: detach, the job keeps running
                    inner.hub.unsubscribe(handle.id);
                    return false;
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                // end of stream: report this subscriber's own loss totals
                let s = handle.stats();
                return writeln!(out, "{}", proto::frame_bye(job, s.delivered, s.dropped)).is_ok();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    /// A handler that "runs" jobs by publishing a frame per replica,
    /// optionally blocking on a gate so tests can control timing.
    struct MockHandler {
        gate: Mutex<Option<std::sync::mpsc::Receiver<()>>>,
    }

    impl MockHandler {
        fn instant() -> Arc<Self> {
            Arc::new(MockHandler {
                gate: Mutex::new(None),
            })
        }

        fn gated() -> (Arc<Self>, std::sync::mpsc::Sender<()>) {
            let (tx, rx) = channel();
            (
                Arc::new(MockHandler {
                    gate: Mutex::new(Some(rx)),
                }),
                tx,
            )
        }
    }

    impl JobHandler for MockHandler {
        fn config_hash(&self, spec: &JobSpec) -> Result<u64, String> {
            if spec.protocol == "bogus" {
                return Err("unknown protocol".into());
            }
            Ok(spec.n_hosts ^ 0xabcd)
        }

        fn run(&self, spec: &JobSpec, ctx: &JobCtx<'_>) -> JobOutcome {
            if let Some(rx) = &*self.gate.lock().unwrap() {
                let _ = rx.recv_timeout(Duration::from_secs(10));
            }
            let mut digests = Vec::new();
            for k in 0..spec.replicas {
                if ctx.cancelled() {
                    return JobOutcome {
                        state: JobState::Interrupted,
                        replicas_done: k,
                        ..JobOutcome::interrupted()
                    };
                }
                ctx.hub.publish_frame(
                    ctx.job,
                    &proto::frame_replica_done(ctx.job, k, spec.seed + k, false, Some("feed"), None, None),
                );
                digests.push("feed".to_string());
            }
            JobOutcome {
                state: JobState::Done,
                replicas_done: spec.replicas,
                from_journal: 0,
                quarantined: 0,
                digests,
                pdr: Some(0.5),
                latency_ms: None,
                malformed_journal_lines: 0,
                error: None,
            }
        }

        fn lookup(&self, _state_dir: &Path, _config: u64, _seed: u64) -> Option<ReplicaLookup> {
            None
        }
    }

    fn test_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ecgrid_service_unit_{tag}"));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        (BufReader::new(s.try_clone().unwrap()), s)
    }

    fn roundtrip(r: &mut BufReader<TcpStream>, w: &mut TcpStream, req: &str) -> String {
        writeln!(w, "{req}").unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        line.trim().to_string()
    }

    #[test]
    fn submit_run_status_lifecycle() {
        let dir = test_dir("lifecycle");
        let srv = Server::start(
            ServiceConfig::default().with_state_dir(&dir),
            MockHandler::instant(),
        )
        .unwrap();
        let (mut r, mut w) = connect(srv.local_addr());
        let pong = roundtrip(&mut r, &mut w, &Request::Ping.encode());
        assert_eq!(json::field(&pong, "pong"), Some("sweepd"));
        let sub = roundtrip(
            &mut r,
            &mut w,
            &Request::Submit(JobSpec {
                replicas: 2,
                ..JobSpec::default()
            })
            .encode(),
        );
        assert_eq!(json::bool_field(&sub, "ok"), Some(true));
        let job = json::u64_field(&sub, "job").unwrap();
        // poll status until terminal
        let mut state = String::new();
        for _ in 0..100 {
            let st = roundtrip(&mut r, &mut w, &Request::Status { job: Some(job) }.encode());
            state = json::field(&st, "state").unwrap().to_string();
            if state == "done" {
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(state, "done");
        srv.request_shutdown();
        let summary = srv.wait();
        assert_eq!(summary.submitted, 1);
        assert_eq!(summary.completed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overflow_submissions_are_shed_with_a_hint() {
        let dir = test_dir("shed");
        // one gated worker + capacity 1: job A occupies the worker, job B
        // fills the queue, job C must shed
        let (handler, gate) = MockHandler::gated();
        let srv = Server::start(
            ServiceConfig::default()
                .with_state_dir(&dir)
                .with_workers(1)
                .with_capacity(1)
                .with_retry_after_ms(321),
            handler,
        )
        .unwrap();
        let (mut r, mut w) = connect(srv.local_addr());
        let submit = Request::Submit(JobSpec::default()).encode();
        let a = roundtrip(&mut r, &mut w, &submit);
        assert_eq!(json::bool_field(&a, "ok"), Some(true));
        // wait for the worker to pick job A up so the queue is empty
        let job_a = json::u64_field(&a, "job").unwrap();
        for _ in 0..100 {
            let st = roundtrip(&mut r, &mut w, &Request::Status { job: Some(job_a) }.encode());
            if json::field(&st, "state") == Some("running") {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        let b = roundtrip(&mut r, &mut w, &submit);
        assert_eq!(json::bool_field(&b, "ok"), Some(true));
        let c = roundtrip(&mut r, &mut w, &submit);
        assert_eq!(json::bool_field(&c, "ok"), Some(false));
        assert_eq!(json::bool_field(&c, "shed"), Some(true));
        assert_eq!(json::u64_field(&c, "retry_after_ms"), Some(321));
        gate.send(()).unwrap();
        gate.send(()).unwrap();
        srv.request_shutdown();
        let summary = srv.wait();
        assert_eq!(summary.shed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_specs_and_unknown_jobs_get_error_replies() {
        let dir = test_dir("badspec");
        let srv = Server::start(
            ServiceConfig::default().with_state_dir(&dir),
            MockHandler::instant(),
        )
        .unwrap();
        let (mut r, mut w) = connect(srv.local_addr());
        let bad = roundtrip(
            &mut r,
            &mut w,
            &Request::Submit(JobSpec {
                protocol: "bogus".into(),
                ..JobSpec::default()
            })
            .encode(),
        );
        assert_eq!(json::bool_field(&bad, "ok"), Some(false));
        let unknown = roundtrip(&mut r, &mut w, &Request::Status { job: Some(999) }.encode());
        assert_eq!(json::bool_field(&unknown, "ok"), Some(false));
        let garbage = roundtrip(&mut r, &mut w, "completely not json");
        assert_eq!(json::bool_field(&garbage, "ok"), Some(false));
        // the connection survived all three errors
        let pong = roundtrip(&mut r, &mut w, &Request::Ping.encode());
        assert_eq!(json::bool_field(&pong, "ok"), Some(true));
        srv.request_shutdown();
        srv.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_interrupts_queued_jobs_and_restart_requeues_them() {
        let dir = test_dir("drainrestart");
        let (handler, gate) = MockHandler::gated();
        let srv = Server::start(
            ServiceConfig::default()
                .with_state_dir(&dir)
                .with_workers(1)
                .with_capacity(8),
            handler,
        )
        .unwrap();
        let (mut r, mut w) = connect(srv.local_addr());
        let submit = Request::Submit(JobSpec::default()).encode();
        let a = roundtrip(&mut r, &mut w, &submit); // will run (gated)
        let b = roundtrip(&mut r, &mut w, &submit); // stays queued
        assert_eq!(json::bool_field(&b, "ok"), Some(true));
        let job_a = json::u64_field(&a, "job").unwrap();
        for _ in 0..100 {
            let st = roundtrip(&mut r, &mut w, &Request::Status { job: Some(job_a) }.encode());
            if json::field(&st, "state") == Some("running") {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        let sd = roundtrip(&mut r, &mut w, &Request::Shutdown.encode());
        assert_eq!(json::bool_field(&sd, "ok"), Some(true));
        gate.send(()).unwrap(); // let job A's handler proceed (it will see cancel)
        let summary = srv.wait();
        assert!(summary.interrupted >= 1, "queued job must be marked interrupted");

        // restart over the same state dir: both unfinished jobs requeue
        let srv2 = Server::start(
            ServiceConfig::default().with_state_dir(&dir),
            MockHandler::instant(),
        )
        .unwrap();
        let (mut r2, mut w2) = connect(srv2.local_addr());
        let mut done = 0;
        for _ in 0..200 {
            let st = roundtrip(&mut r2, &mut w2, &Request::Status { job: None }.encode());
            done = json::u64_field(&st, "done").unwrap();
            if done == 2 {
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(done, 2, "recovered jobs must re-run to completion");
        srv2.request_shutdown();
        let s2 = srv2.wait();
        assert_eq!(s2.recovered, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn subscribe_streams_to_done_and_reports_bye() {
        let dir = test_dir("stream");
        let (handler, gate) = MockHandler::gated();
        let srv = Server::start(
            ServiceConfig::default().with_state_dir(&dir).with_workers(1),
            handler,
        )
        .unwrap();
        let (mut r, mut w) = connect(srv.local_addr());
        let sub = roundtrip(
            &mut r,
            &mut w,
            &Request::Submit(JobSpec {
                replicas: 3,
                ..JobSpec::default()
            })
            .encode(),
        );
        let job = json::u64_field(&sub, "job").unwrap();
        let ok = roundtrip(
            &mut r,
            &mut w,
            &Request::Subscribe {
                job,
                filter: proto::FilterSpec::default(),
            }
            .encode(),
        );
        assert_eq!(json::bool_field(&ok, "ok"), Some(true));
        gate.send(()).unwrap();
        let mut frames = Vec::new();
        loop {
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            let line = line.trim().to_string();
            let stream = json::field(&line, "stream").unwrap().to_string();
            frames.push(line);
            if stream == "bye" {
                break;
            }
        }
        let streams: Vec<&str> = frames.iter().map(|f| json::field(f, "stream").unwrap()).collect();
        assert!(streams.contains(&"replica_done"));
        assert_eq!(streams[streams.len() - 2], "done");
        assert_eq!(streams[streams.len() - 1], "bye");
        // late subscriber gets the replayed summary
        let ok2 = roundtrip(
            &mut r,
            &mut w,
            &Request::Subscribe {
                job,
                filter: proto::FilterSpec::default(),
            }
            .encode(),
        );
        assert_eq!(json::bool_field(&ok2, "ok"), Some(true));
        let mut done = String::new();
        r.read_line(&mut done).unwrap();
        assert_eq!(json::field(&done, "stream"), Some("done"));
        let mut bye = String::new();
        r.read_line(&mut bye).unwrap();
        assert_eq!(json::field(&bye, "stream"), Some("bye"));
        srv.request_shutdown();
        srv.wait();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
