//! The wire protocol: requests, replies, and stream frames.
//!
//! Transport is TCP carrying UTF-8 lines; every line is one flat JSON
//! object (see [`crate::json`]).  Grammar:
//!
//! ```text
//! request  := {"cmd":"ping"}
//!           | {"cmd":"submit", <scenario fields>, "replicas":N, "faults":S}
//!           | {"cmd":"status"} | {"cmd":"status","job":N}
//!           | {"cmd":"subscribe","job":N [,"layers":S][,"node":N]
//!              [,"cell_x":N,"cell_y":N][,"protocol":S]}
//!           | {"cmd":"result","config":H,"seed":N}
//!           | {"cmd":"stats"} | {"cmd":"shutdown"}
//! reply    := {"ok":true, ...} | {"ok":false,"error":S [,"shed":true,
//!              "retry_after_ms":N,"queued":N,"capacity":N]}
//! frame    := {"stream":"event"|"metric"|"replica_done"|
//!              "replica_quarantined"|"failure"|"job"|"done"|"bye", ...}
//! ```
//!
//! A `subscribe` switches the connection into stream mode: the server
//! sends frames until the job's terminal `done` frame, then a `bye` frame
//! carrying the subscriber's own delivered/dropped totals, after which
//! the connection reverts to request/reply.  Floats that must survive a
//! round trip bit for bit (averaged metrics) travel as 16-hex-digit bit
//! patterns; human-oriented floats (scenario config) travel as shortest
//! decimal, which Rust's formatter already round-trips exactly.

use crate::json::{self, Obj};
use trace::{Event, EventFilter};

/// Protocol version, checked on `submit` manifests.
pub const PROTO_VERSION: u64 = 1;

/// One job: a scenario shape, replica count, and fault plan — everything
/// the server needs to reconstruct the work after a crash, which is why
/// the same encoding serves as both the submit request body and the
/// on-disk job manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    pub protocol: String,
    pub n_hosts: u64,
    pub max_speed: f64,
    pub pause_secs: f64,
    pub n_flows: u64,
    pub flow_rate_pps: f64,
    pub duration_secs: f64,
    pub seed: u64,
    pub model1_endpoints: u64,
    /// Replicas to run (replica `k` re-derives its seed from `seed`).
    pub replicas: u64,
    /// Fault-plan spec string (e.g. `"loss=0.1,churn=2"`); empty = none.
    pub faults: String,
    /// Hex-encoded scenario-file text (see [`scenario_hex_encode`]);
    /// empty = a classic homogeneous job described by the scalar fields
    /// above.  When present, the scenario text is authoritative for the
    /// fleet shape and base seed, and the scalar shape fields are
    /// ignored (the `protocol` and `faults` strings still apply).  Hex
    /// because [`crate::json::esc`] is deliberately lossy — raw scenario
    /// text with quotes and newlines would not survive the wire.
    pub scenario: String,
}

/// Encode arbitrary text as lowercase hex for lossless transport through
/// the flat-JSON wire format.
pub fn scenario_hex_encode(text: &str) -> String {
    let mut out = String::with_capacity(text.len() * 2);
    for b in text.bytes() {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`scenario_hex_encode`].  Rejects odd-length or non-hex
/// input and non-UTF-8 decodes.
pub fn scenario_hex_decode(hex: &str) -> Result<String, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("scenario hex has odd length".into());
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    let raw = hex.as_bytes();
    for pair in raw.chunks_exact(2) {
        let s = std::str::from_utf8(pair).map_err(|_| "scenario hex is not ASCII".to_string())?;
        bytes.push(u8::from_str_radix(s, 16).map_err(|_| format!("bad hex byte \"{s}\""))?);
    }
    String::from_utf8(bytes).map_err(|_| "scenario text is not UTF-8".into())
}

impl Default for JobSpec {
    /// A small smoke-scale ECGRID point (the golden-trace scenario).
    fn default() -> Self {
        JobSpec {
            protocol: "ecgrid".into(),
            n_hosts: 30,
            max_speed: 1.0,
            pause_secs: 0.0,
            n_flows: 3,
            flow_rate_pps: 1.0,
            duration_secs: 40.0,
            seed: 11,
            model1_endpoints: 4,
            replicas: 1,
            faults: String::new(),
            scenario: String::new(),
        }
    }
}

impl JobSpec {
    /// Append the spec's fields onto an [`Obj`] under construction.
    pub fn encode_onto(&self, o: Obj) -> Obj {
        let o = o
            .str("protocol", &self.protocol)
            .u64("n_hosts", self.n_hosts)
            .f64("max_speed", self.max_speed)
            .f64("pause_secs", self.pause_secs)
            .u64("n_flows", self.n_flows)
            .f64("flow_rate_pps", self.flow_rate_pps)
            .f64("duration_secs", self.duration_secs)
            .u64("seed", self.seed)
            .u64("model1_endpoints", self.model1_endpoints)
            .u64("replicas", self.replicas)
            .str("faults", &self.faults);
        if self.scenario.is_empty() {
            o
        } else {
            // hex is [0-9a-f]*, untouched by the lossy escaper
            o.str("scenario", &self.scenario)
        }
    }

    /// Parse the spec fields out of any line carrying them (submit
    /// request or job manifest).  Missing fields fall back to the
    /// defaults; present-but-garbled fields are an error.
    pub fn parse(line: &str) -> Result<JobSpec, String> {
        let d = JobSpec::default();
        fn take<T>(
            line: &str,
            key: &str,
            get: impl Fn(&str, &str) -> Option<T>,
            dflt: T,
        ) -> Result<T, String> {
            if json::field(line, key).is_none() {
                return Ok(dflt);
            }
            get(line, key).ok_or_else(|| format!("bad field {key}"))
        }
        Ok(JobSpec {
            protocol: take(
                line,
                "protocol",
                |l, k| json::field(l, k).map(str::to_string),
                d.protocol,
            )?,
            n_hosts: take(line, "n_hosts", json::u64_field, d.n_hosts)?,
            max_speed: take(line, "max_speed", json::f64_field, d.max_speed)?,
            pause_secs: take(line, "pause_secs", json::f64_field, d.pause_secs)?,
            n_flows: take(line, "n_flows", json::u64_field, d.n_flows)?,
            flow_rate_pps: take(line, "flow_rate_pps", json::f64_field, d.flow_rate_pps)?,
            duration_secs: take(line, "duration_secs", json::f64_field, d.duration_secs)?,
            seed: take(line, "seed", json::u64_field, d.seed)?,
            model1_endpoints: take(line, "model1_endpoints", json::u64_field, d.model1_endpoints)?,
            replicas: take(line, "replicas", json::u64_field, d.replicas)?.max(1),
            faults: take(
                line,
                "faults",
                |l, k| json::field(l, k).map(str::to_string),
                d.faults,
            )?,
            scenario: take(
                line,
                "scenario",
                |l, k| json::field(l, k).map(str::to_string),
                d.scenario,
            )?,
        })
    }
}

/// Wire form of an [`EventFilter`]: the optional axes of a `subscribe`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FilterSpec {
    /// Comma-separated layer names; empty = all layers.
    pub layers: String,
    pub node: Option<u32>,
    pub cell: Option<(i32, i32)>,
    pub protocol: Option<String>,
}

impl FilterSpec {
    pub fn to_filter(&self) -> Result<EventFilter, String> {
        let mut f = EventFilter::all()
            .with_layers(&self.layers)
            .ok_or_else(|| format!("unknown layer in \"{}\"", self.layers))?;
        if let Some(n) = self.node {
            f = f.with_node(n);
        }
        if let Some((x, y)) = self.cell {
            f = f.with_cell(x, y);
        }
        if let Some(p) = &self.protocol {
            f = f.with_protocol(p.clone());
        }
        Ok(f)
    }

    fn encode_onto(&self, mut o: Obj) -> Obj {
        if !self.layers.is_empty() {
            o = o.str("layers", &self.layers);
        }
        if let Some(n) = self.node {
            o = o.u64("node", n as u64);
        }
        if let Some((x, y)) = self.cell {
            o = o.i64("cell_x", x as i64).i64("cell_y", y as i64);
        }
        if let Some(p) = &self.protocol {
            o = o.str("protocol", p);
        }
        o
    }

    fn parse(line: &str) -> FilterSpec {
        FilterSpec {
            layers: json::field(line, "layers").unwrap_or("").to_string(),
            node: json::u64_field(line, "node").map(|n| n as u32),
            cell: match (json::i64_field(line, "cell_x"), json::i64_field(line, "cell_y")) {
                (Some(x), Some(y)) => Some((x as i32, y as i32)),
                _ => None,
            },
            protocol: json::field(line, "protocol").map(str::to_string),
        }
    }
}

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Ping,
    Submit(JobSpec),
    Status { job: Option<u64> },
    Subscribe { job: u64, filter: FilterSpec },
    Result { config: u64, seed: u64 },
    Stats,
    Shutdown,
}

impl Request {
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => Obj::new().str("cmd", "ping").finish(),
            Request::Submit(spec) => spec.encode_onto(Obj::new().str("cmd", "submit")).finish(),
            Request::Status { job } => {
                let mut o = Obj::new().str("cmd", "status");
                if let Some(j) = job {
                    o = o.u64("job", *j);
                }
                o.finish()
            }
            Request::Subscribe { job, filter } => filter
                .encode_onto(Obj::new().str("cmd", "subscribe").u64("job", *job))
                .finish(),
            Request::Result { config, seed } => Obj::new()
                .str("cmd", "result")
                .raw("config", &format!("\"{config:016x}\""))
                .u64("seed", *seed)
                .finish(),
            Request::Stats => Obj::new().str("cmd", "stats").finish(),
            Request::Shutdown => Obj::new().str("cmd", "shutdown").finish(),
        }
    }

    pub fn parse(line: &str) -> Result<Request, String> {
        let cmd = json::field(line, "cmd").ok_or("missing cmd")?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "submit" => Ok(Request::Submit(JobSpec::parse(line)?)),
            "status" => Ok(Request::Status {
                job: json::u64_field(line, "job"),
            }),
            "subscribe" => Ok(Request::Subscribe {
                job: json::u64_field(line, "job").ok_or("subscribe needs job")?,
                filter: FilterSpec::parse(line),
            }),
            "result" => Ok(Request::Result {
                config: json::hex_field(line, "config").ok_or("result needs config (hex)")?,
                seed: json::u64_field(line, "seed").ok_or("result needs seed")?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd \"{other}\"")),
        }
    }
}

/// Lifecycle of one job.  `Interrupted` is the resumable state: the
/// server was drained or crashed while the job was queued or running; a
/// restart requeues it and the journal makes the rerun incremental.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Quarantined,
    Interrupted,
}

impl JobState {
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Quarantined => "quarantined",
            JobState::Interrupted => "interrupted",
        }
    }

    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "quarantined" => JobState::Quarantined,
            "interrupted" => JobState::Interrupted,
            _ => return None,
        })
    }

    /// A terminal state needs no further work after a restart.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Quarantined)
    }
}

// ----- reply builders ----------------------------------------------------

pub fn reply_err(msg: &str) -> String {
    Obj::new().bool("ok", false).str("error", msg).finish()
}

/// The load-shed reply: explicit refusal with a retry hint — the bounded
/// admission queue's alternative to letting a submit hang.
pub fn reply_shed(retry_after_ms: u64, queued: usize, capacity: usize) -> String {
    Obj::new()
        .bool("ok", false)
        .bool("shed", true)
        .str("error", "admission queue full")
        .u64("retry_after_ms", retry_after_ms)
        .u64("queued", queued as u64)
        .u64("capacity", capacity as u64)
        .finish()
}

pub fn reply_ok() -> Obj {
    Obj::new().bool("ok", true)
}

// ----- stream frame builders ---------------------------------------------

/// An event frame: the event's own JSONL object with the stream header
/// spliced in front of its fields.
pub fn frame_event(job: u64, replica: u64, protocol: &str, ev: &Event) -> String {
    let body = ev.to_jsonl(protocol);
    let head = Obj::new()
        .str("stream", "event")
        .u64("job", job)
        .u64("replica", replica)
        .finish();
    // "{head…}" + "{body…}" → "{head…,body…}"
    let mut s = String::with_capacity(head.len() + body.len());
    s.push_str(&head[..head.len() - 1]);
    s.push(',');
    s.push_str(&body[1..]);
    s
}

pub fn frame_counter(job: u64, replica: u64, name: &str, value: u64) -> String {
    Obj::new()
        .str("stream", "metric")
        .u64("job", job)
        .u64("replica", replica)
        .str("kind", "counter")
        .str("name", name)
        .u64("value", value)
        .finish()
}

pub fn frame_gauge(job: u64, replica: u64, name: &str, value: f64) -> String {
    Obj::new()
        .str("stream", "metric")
        .u64("job", job)
        .u64("replica", replica)
        .str("kind", "gauge")
        .str("name", name)
        .f64("value", value)
        .f64_bits("bits", Some(value))
        .finish()
}

pub fn frame_replica_done(
    job: u64,
    replica: u64,
    seed: u64,
    from_journal: bool,
    digest: Option<&str>,
    pdr: Option<f64>,
    latency_ms: Option<f64>,
) -> String {
    let mut o = Obj::new()
        .str("stream", "replica_done")
        .u64("job", job)
        .u64("replica", replica)
        .u64("seed", seed)
        .bool("from_journal", from_journal);
    o = match digest {
        Some(d) => o.str("digest", d),
        None => o.raw("digest", "null"),
    };
    o.f64_bits("pdr", pdr).f64_bits("latency_ms", latency_ms).finish()
}

pub fn frame_failure(job: u64, replica: u64, attempt: u32, error: &str) -> String {
    Obj::new()
        .str("stream", "failure")
        .u64("job", job)
        .u64("replica", replica)
        .u64("attempt", attempt as u64)
        .str("error", error)
        .finish()
}

pub fn frame_replica_quarantined(job: u64, replica: u64, attempts: u32, error: &str) -> String {
    Obj::new()
        .str("stream", "replica_quarantined")
        .u64("job", job)
        .u64("replica", replica)
        .u64("attempts", attempts as u64)
        .str("error", error)
        .finish()
}

pub fn frame_job_state(job: u64, state: JobState) -> String {
    Obj::new()
        .str("stream", "job")
        .u64("job", job)
        .str("state", state.name())
        .finish()
}

/// The subscriber's end-of-stream marker, written by the connection
/// thread itself so it can carry that subscriber's own loss accounting.
pub fn frame_bye(job: u64, delivered: u64, dropped: u64) -> String {
    Obj::new()
        .str("stream", "bye")
        .u64("job", job)
        .u64("delivered", delivered)
        .u64("dropped", dropped)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_roundtrips_through_parse() {
        let spec = JobSpec {
            protocol: "gaf".into(),
            n_hosts: 55,
            max_speed: 2.5,
            pause_secs: 30.0,
            n_flows: 8,
            flow_rate_pps: 0.25,
            duration_secs: 900.0,
            seed: 1234,
            model1_endpoints: 6,
            replicas: 4,
            faults: "loss=0.1,churn=2".into(),
            scenario: String::new(),
        };
        let line = Request::Submit(spec.clone()).encode();
        match Request::parse(&line).unwrap() {
            Request::Submit(got) => assert_eq!(got, spec),
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn submit_defaults_fill_missing_fields() {
        let spec = JobSpec::parse("{\"cmd\":\"submit\",\"seed\":99}").unwrap();
        assert_eq!(spec.seed, 99);
        assert_eq!(spec.protocol, "ecgrid");
        assert_eq!(spec.replicas, 1);
        // replicas clamp to >= 1
        let spec = JobSpec::parse("{\"cmd\":\"submit\",\"replicas\":0}").unwrap();
        assert_eq!(spec.replicas, 1);
    }

    #[test]
    fn scenario_text_survives_the_wire_via_hex() {
        let text = "[scenario]\nname = \"demo\"  # quotes, newlines, backslash \\\n";
        let hex = scenario_hex_encode(text);
        assert!(hex.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(scenario_hex_decode(&hex).unwrap(), text);
        let spec = JobSpec {
            scenario: hex.clone(),
            ..JobSpec::default()
        };
        let line = Request::Submit(spec.clone()).encode();
        match Request::parse(&line).unwrap() {
            Request::Submit(got) => {
                assert_eq!(got, spec);
                assert_eq!(scenario_hex_decode(&got.scenario).unwrap(), text);
            }
            other => panic!("parsed {other:?}"),
        }
        // classic jobs omit the field entirely
        let classic = Request::Submit(JobSpec::default()).encode();
        assert!(!classic.contains("scenario"));
        // malformed hex is rejected, not silently truncated
        assert!(scenario_hex_decode("abc").is_err());
        assert!(scenario_hex_decode("zz").is_err());
    }

    #[test]
    fn garbled_field_is_an_error_not_a_default() {
        assert!(JobSpec::parse("{\"cmd\":\"submit\",\"n_hosts\":\"lots\"}").is_err());
    }

    #[test]
    fn subscribe_filter_roundtrips() {
        let req = Request::Subscribe {
            job: 3,
            filter: FilterSpec {
                layers: "mac,route".into(),
                node: Some(7),
                cell: Some((-1, 4)),
                protocol: Some("ECGRID".into()),
            },
        };
        let line = req.encode();
        assert_eq!(Request::parse(&line).unwrap(), req);
        match Request::parse(&line).unwrap() {
            Request::Subscribe { filter, .. } => {
                let f = filter.to_filter().unwrap();
                assert_eq!(f.layers.len(), 2);
                assert_eq!(f.node, Some(7));
                assert_eq!(f.cell, Some((-1, 4)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn result_request_roundtrips_hex_config() {
        let req = Request::Result {
            config: 0xdead_beef_0123_4567,
            seed: 42,
        };
        assert_eq!(Request::parse(&req.encode()).unwrap(), req);
    }

    #[test]
    fn unknown_cmd_is_a_parse_error() {
        assert!(Request::parse("{\"cmd\":\"fire_missiles\"}").is_err());
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("").is_err());
    }

    #[test]
    fn shed_reply_carries_the_hint() {
        let line = reply_shed(750, 16, 16);
        assert_eq!(crate::json::bool_field(&line, "ok"), Some(false));
        assert_eq!(crate::json::bool_field(&line, "shed"), Some(true));
        assert_eq!(crate::json::u64_field(&line, "retry_after_ms"), Some(750));
    }

    #[test]
    fn job_state_roundtrips() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Quarantined,
            JobState::Interrupted,
        ] {
            assert_eq!(JobState::parse(s.name()), Some(s));
        }
        assert!(JobState::Done.is_terminal());
        assert!(!JobState::Interrupted.is_terminal());
    }
}
