//! Flat one-line JSON encode/decode — the service's entire wire grammar.
//!
//! Every protocol message is a single-line JSON object whose values are
//! numbers, booleans, `null`, or strings.  Nesting is never produced, so
//! the decoder can be a quote-aware linear scan instead of a JSON parser.
//! Strings are sanitized on encode ([`esc`] strips quotes, backslashes
//! and control characters), which guarantees the invariant the scanner
//! relies on: a `"key":` pattern can never occur inside a value we
//! emitted.  Hostile input can at worst misparse into a field mismatch,
//! which the protocol layer answers with an error reply — never a panic
//! or a hang.

/// Sanitize a string for embedding in a one-line JSON object: quotes and
/// backslashes become `'` and `/`, control characters become spaces.
/// Lossy by design — the service's strings are identifiers, fault specs
/// and error messages, not payloads.
pub fn esc(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '"' => '\'',
            '\\' => '/',
            c if c.is_control() => ' ',
            c => c,
        })
        .collect()
}

/// Raw value token of `"key":<token>` in a flat object: for string values
/// the content between the quotes, otherwise the run of characters up to
/// the closing `,` or `}`.  The scan is quote-aware, so string values
/// containing `,` or `}` (fault specs like `"loss=0.1,churn=2"`) decode
/// intact.
pub fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        let end = inner.find('"')?;
        Some(&inner[..end])
    } else {
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim())
    }
}

pub fn u64_field(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

pub fn i64_field(line: &str, key: &str) -> Option<i64> {
    field(line, key)?.parse().ok()
}

pub fn f64_field(line: &str, key: &str) -> Option<f64> {
    field(line, key)?.parse().ok()
}

pub fn bool_field(line: &str, key: &str) -> Option<bool> {
    match field(line, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// `"key":"hex16"` → the `u64` bit pattern (used for bit-exact `f64`s).
pub fn hex_field(line: &str, key: &str) -> Option<u64> {
    u64::from_str_radix(field(line, key)?, 16).ok()
}

/// Builder for one flat single-line JSON object.
#[derive(Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(key);
        self.buf.push_str("\":");
    }

    /// A pre-rendered token (number, `null`, or an already-valid object).
    pub fn raw(mut self, key: &str, token: &str) -> Self {
        self.key(key);
        self.buf.push_str(token);
        self
    }

    /// A string value, sanitized via [`esc`].
    pub fn str(mut self, key: &str, val: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&esc(val));
        self.buf.push('"');
        self
    }

    pub fn u64(self, key: &str, val: u64) -> Self {
        let tok = val.to_string();
        self.raw(key, &tok)
    }

    pub fn i64(self, key: &str, val: i64) -> Self {
        let tok = val.to_string();
        self.raw(key, &tok)
    }

    pub fn bool(self, key: &str, val: bool) -> Self {
        self.raw(key, if val { "true" } else { "false" })
    }

    /// A plain (human-readable, lossy) float rendering.
    pub fn f64(self, key: &str, val: f64) -> Self {
        let tok = format!("{val}");
        self.raw(key, &tok)
    }

    /// A bit-exact float: rendered as the 16-hex-digit bit pattern string,
    /// or `null`.  Decode with [`hex_field`] + `f64::from_bits`.
    pub fn f64_bits(self, key: &str, val: Option<f64>) -> Self {
        match val {
            Some(v) => {
                let tok = format!("\"{:016x}\"", v.to_bits());
                self.raw(key, &tok)
            }
            None => self.raw(key, "null"),
        }
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_scanner_roundtrip() {
        let line = Obj::new()
            .str("cmd", "submit")
            .u64("seed", 42)
            .f64_bits("pdr", Some(0.1 + 0.2))
            .f64_bits("lat", None)
            .bool("ok", true)
            .finish();
        assert_eq!(field(&line, "cmd"), Some("submit"));
        assert_eq!(u64_field(&line, "seed"), Some(42));
        assert_eq!(hex_field(&line, "pdr").map(f64::from_bits), Some(0.1 + 0.2));
        assert_eq!(field(&line, "lat"), Some("null"));
        assert_eq!(bool_field(&line, "ok"), Some(true));
        assert_eq!(field(&line, "missing"), None);
    }

    #[test]
    fn string_values_with_commas_and_braces_survive() {
        let line = Obj::new()
            .str("faults", "loss=0.1,churn={2}")
            .u64("after", 7)
            .finish();
        assert_eq!(field(&line, "faults"), Some("loss=0.1,churn={2}"));
        assert_eq!(u64_field(&line, "after"), Some(7));
    }

    #[test]
    fn esc_strips_quotes_and_control_chars() {
        assert_eq!(esc("a\"b\\c\nd"), "a'b/c d");
        let line = Obj::new().str("msg", "he said \"no\"\n").finish();
        assert_eq!(field(&line, "msg"), Some("he said 'no' "));
    }

    #[test]
    fn negative_and_zero_numbers() {
        let line = Obj::new().i64("x", -3).u64("y", 0).finish();
        assert_eq!(i64_field(&line, "x"), Some(-3));
        assert_eq!(u64_field(&line, "y"), Some(0));
    }
}
