//! The subscriber hub: fan-out of stream frames to live subscribers with
//! bounded buffers and drop-and-count overload behavior.
//!
//! The cardinal rule is that a slow or dead consumer must never slow the
//! producer: the simulation worker publishes with `try_send` into each
//! subscriber's bounded channel and *drops* the frame when the buffer is
//! full, incrementing that subscriber's [`DropCounter`] (and a hub-wide
//! aggregate).  The subscriber learns its own loss total from the `bye`
//! frame its connection writes at end of stream, so "I saw every event"
//! stays a falsifiable claim.
//!
//! Filtering happens here, producer-side: an event frame is only
//! rendered (and only offered) to subscribers whose [`EventFilter`]
//! matches its labels, so a narrow subscription costs the wire — and the
//! render path — only its own events.  When a job has no subscribers at
//! all, the per-event overhead is one relaxed atomic load.

use crate::proto;
use metrics::{DropCounter, DropStats};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use trace::{Event, EventFilter};

struct SubEntry {
    id: u64,
    job: u64,
    filter: EventFilter,
    tx: SyncSender<String>,
    counter: Arc<DropCounter>,
}

/// A subscription as its owning connection sees it: the receive side of
/// the bounded buffer plus the loss counter the hub updates.
pub struct SubscriberHandle {
    pub id: u64,
    pub job: u64,
    pub rx: Receiver<String>,
    pub counter: Arc<DropCounter>,
}

impl SubscriberHandle {
    pub fn stats(&self) -> DropStats {
        self.counter.snapshot()
    }
}

/// Fan-out hub shared by the server's workers and connection threads.
#[derive(Default)]
pub struct Hub {
    subs: Mutex<Vec<SubEntry>>,
    /// Cached count so the no-subscriber hot path is one atomic load.
    n_subs: AtomicUsize,
    next_id: AtomicU64,
    /// Aggregate loss over all subscribers, live and departed.
    drops: DropCounter,
}

impl Hub {
    pub fn new() -> Self {
        Hub::default()
    }

    /// Register a subscriber for `job` with a buffer of `depth` frames.
    pub fn subscribe(&self, job: u64, filter: EventFilter, depth: usize) -> SubscriberHandle {
        let (tx, rx) = sync_channel(depth.max(1));
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let counter = Arc::new(DropCounter::new());
        let mut subs = self.subs.lock().expect("hub lock");
        subs.push(SubEntry {
            id,
            job,
            filter,
            tx,
            counter: counter.clone(),
        });
        self.n_subs.store(subs.len(), Ordering::Relaxed);
        SubscriberHandle { id, job, rx, counter }
    }

    /// Drop one subscription (the connection went away or finished).
    pub fn unsubscribe(&self, id: u64) {
        let mut subs = self.subs.lock().expect("hub lock");
        subs.retain(|s| s.id != id);
        self.n_subs.store(subs.len(), Ordering::Relaxed);
    }

    pub fn subscriber_count(&self) -> usize {
        self.n_subs.load(Ordering::Relaxed)
    }

    /// Aggregate delivered/dropped totals across all subscribers ever.
    pub fn drop_stats(&self) -> DropStats {
        self.drops.snapshot()
    }

    fn offer(&self, entry: &SubEntry, frame: &str) {
        match entry.tx.try_send(frame.to_string()) {
            Ok(()) => {
                entry.counter.note_delivered();
                self.drops.note_delivered();
            }
            Err(TrySendError::Full(_)) => {
                entry.counter.note_dropped();
                self.drops.note_dropped();
            }
            // a disconnected receiver is reaped by unsubscribe; until
            // then its frames just vanish without accounting noise
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// Publish one simulation event for `job`; the frame is rendered at
    /// most once, and only if some subscriber's filter matches.
    pub fn publish_event(&self, job: u64, replica: u64, protocol: &str, ev: &Event) {
        if self.n_subs.load(Ordering::Relaxed) == 0 {
            return;
        }
        let labels = ev.labels(protocol);
        let mut frame: Option<String> = None;
        let subs = self.subs.lock().expect("hub lock");
        for s in subs.iter() {
            if s.job != job || !s.filter.matches(&labels) {
                continue;
            }
            let f = frame.get_or_insert_with(|| proto::frame_event(job, replica, protocol, ev));
            self.offer(s, f);
        }
    }

    /// Publish a control frame (metric, replica_done, job, done, …) to
    /// every subscriber of `job`, bypassing event filters.
    pub fn publish_frame(&self, job: u64, frame: &str) {
        if self.n_subs.load(Ordering::Relaxed) == 0 {
            return;
        }
        let subs = self.subs.lock().expect("hub lock");
        for s in subs.iter().filter(|s| s.job == job) {
            self.offer(s, frame);
        }
    }

    /// End of stream for `job`: disconnect its subscribers' senders so
    /// each connection's receive loop sees the channel close (its cue to
    /// write the `bye` frame) after draining buffered frames.
    pub fn finish_job(&self, job: u64) {
        let mut subs = self.subs.lock().expect("hub lock");
        subs.retain(|s| s.job != job);
        self.n_subs.store(subs.len(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_engine::SimTime;
    use trace::EventKind;

    fn ev() -> Event {
        Event {
            t: SimTime::from_secs(1),
            kind: EventKind::MacRetry {
                node: radio_node(3),
                attempt: 1,
            },
        }
    }

    fn radio_node(n: u32) -> radio::NodeId {
        radio::NodeId(n)
    }

    #[test]
    fn frames_reach_matching_subscribers_only() {
        let hub = Hub::new();
        let mac = hub.subscribe(1, EventFilter::all().with_layers("mac").unwrap(), 8);
        let route = hub.subscribe(1, EventFilter::all().with_layers("route").unwrap(), 8);
        let other_job = hub.subscribe(2, EventFilter::all(), 8);
        hub.publish_event(1, 0, "ECGRID", &ev());
        assert!(mac.rx.try_recv().is_ok());
        assert!(route.rx.try_recv().is_err());
        assert!(other_job.rx.try_recv().is_err());
    }

    #[test]
    fn full_buffer_drops_and_counts_instead_of_blocking() {
        let hub = Hub::new();
        let sub = hub.subscribe(1, EventFilter::all(), 2);
        for _ in 0..5 {
            hub.publish_frame(1, "{\"stream\":\"job\"}");
        }
        let s = sub.stats();
        assert_eq!(s.delivered, 2);
        assert_eq!(s.dropped, 3);
        assert_eq!(hub.drop_stats().dropped, 3);
        // the producer side never blocked: we are still here
    }

    #[test]
    fn finish_job_closes_the_channel_after_buffered_frames() {
        let hub = Hub::new();
        let sub = hub.subscribe(1, EventFilter::all(), 8);
        hub.publish_frame(1, "a");
        hub.finish_job(1);
        assert_eq!(hub.subscriber_count(), 0);
        assert_eq!(sub.rx.recv().unwrap(), "a");
        assert!(sub.rx.recv().is_err()); // disconnected = end of stream
    }

    #[test]
    fn no_subscribers_is_a_cheap_no_op() {
        let hub = Hub::new();
        hub.publish_event(1, 0, "ECGRID", &ev());
        hub.publish_frame(1, "x");
        assert_eq!(hub.drop_stats().offered(), 0);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let hub = Hub::new();
        let sub = hub.subscribe(1, EventFilter::all(), 8);
        hub.unsubscribe(sub.id);
        hub.publish_frame(1, "x");
        assert_eq!(hub.subscriber_count(), 0);
        assert!(sub.rx.try_recv().is_err());
    }
}
