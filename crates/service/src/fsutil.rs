//! Durable small-file writes for the crash-safe job lifecycle.
//!
//! A job manifest must survive both a torn write (solved by
//! write-to-temp + rename) and a power cut that loses buffered data
//! (solved by fsyncing the temp file *and the directory entry*: on Unix
//! a rename is only durable once the parent directory's metadata is on
//! disk).  Without the directory fsync, a crash after rename can resurrect
//! the old file — the lifecycle would then requeue a finished job, which
//! is wasteful, or worse, forget an interrupted one.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Write `contents` to `path` atomically *and durably*: temp file in the
/// same directory, `write_all` + `sync_all`, rename over `path`, then
/// fsync the parent directory so the rename itself is on disk.
pub fn write_atomic_durable(path: &Path, contents: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(d) = dir {
        fs::create_dir_all(d)?;
    }
    let tmp = tmp_sibling(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(d) = dir {
        fsync_dir(d)?;
    }
    Ok(())
}

/// Fsync a directory so renames/creates inside it are durable.  On
/// non-Unix platforms directories cannot be opened for sync; the rename
/// alone is the best available guarantee there.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// `<path>.tmp` with the suffix appended to the whole file name, so two
/// files differing only in extension cannot collide on a temp name.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Read a file as a lossily-decoded string; `None` when it is missing or
/// unreadable.  Used by journal/manifest loaders that must survive
/// arbitrary garbage bytes mid-file: invalid UTF-8 degrades to
/// replacement characters on the affected lines (which then fail to parse
/// and are counted), instead of poisoning the whole file.
pub fn read_lossy(path: &Path) -> Option<String> {
    fs::read(path)
        .ok()
        .map(|b| String::from_utf8_lossy(&b).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_durable_replaces_and_survives_reread() {
        let dir = std::env::temp_dir().join("ecgrid_fsutil_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("m.json");
        write_atomic_durable(&path, b"one").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "one");
        write_atomic_durable(&path, b"two").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "two");
        // no temp file left behind
        assert!(!dir.join("m.json.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_lossy_tolerates_garbage_bytes() {
        let dir = std::env::temp_dir().join("ecgrid_fsutil_lossy_test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.jsonl");
        let mut body = b"good line\n".to_vec();
        body.extend_from_slice(&[0xff, 0xfe, 0x80]);
        body.extend_from_slice(b"\nanother line\n");
        fs::write(&path, &body).unwrap();
        let s = read_lossy(&path).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "good line");
        assert_eq!(lines[2], "another line");
        assert!(read_lossy(&dir.join("missing")).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
