//! Cross-protocol integration tests: the paper's qualitative claims hold
//! on shared scenarios (same seed ⇒ same mobility and traffic).

use ecgrid_suite::runner::{run_scenario, ProtocolKind, Scenario};

fn scenario(protocol: ProtocolKind, seed: u64) -> Scenario {
    Scenario {
        protocol,
        n_hosts: 60,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 5,
        flow_rate_pps: 1.0,
        duration_secs: 700.0,
        seed,
        model1_endpoints: 5,
    }
}

#[test]
fn ecgrid_conserves_energy_versus_grid() {
    let grid = run_scenario(&scenario(ProtocolKind::Grid, 11));
    let ecgrid = run_scenario(&scenario(ProtocolKind::Ecgrid, 11));

    // §4A: GRID is down by ~590 s; ECGRID keeps a large fraction alive
    let grid_death = grid.network_death_s.expect("GRID network must die");
    assert!((550.0..=620.0).contains(&grid_death), "GRID died at {grid_death}");
    let ecgrid_alive_at_700 = ecgrid.alive.last_value().unwrap();
    assert!(
        ecgrid_alive_at_700 > 0.3,
        "ECGRID alive fraction {ecgrid_alive_at_700} at 700 s"
    );

    // §4B: aen for GRID is well above ECGRID at any pre-death time.  The
    // paper reports ~33% at 100 hosts; this reduced 60-host scene has
    // fewer sleepable hosts per grid, so we assert a conservative >10%
    // (the full-scale gap is reproduced by `cargo run --bin fig5`).
    let t = 500.0;
    let aen_grid = grid.aen.value_at(t).unwrap();
    let aen_ecgrid = ecgrid.aen.value_at(t).unwrap();
    assert!(
        aen_grid > 1.1 * aen_ecgrid,
        "aen(GRID)={aen_grid:.3} should exceed aen(ECGRID)={aen_ecgrid:.3} by >10%"
    );
}

#[test]
fn delivery_quality_is_comparable_before_grid_dies() {
    // §4C: all protocols deliver >99% at the paper's load before 590 s;
    // we accept ≥90% at this reduced density (60 hosts is sparser than
    // the paper's 100)
    for p in ProtocolKind::ALL {
        let r = run_scenario(&scenario(p, 13));
        let pdr = r.pdr_590.unwrap();
        assert!(pdr >= 0.90, "{} pdr(<590s) = {pdr}", p.name());
        let lat = r.latency_ms_590.unwrap();
        assert!(lat < 60.0, "{} latency {lat} ms", p.name());
    }
}

#[test]
fn energy_aware_protocols_outlive_grid() {
    let grid = run_scenario(&scenario(ProtocolKind::Grid, 17));
    let ecgrid = run_scenario(&scenario(ProtocolKind::Ecgrid, 17));
    let gaf = run_scenario(&scenario(ProtocolKind::Gaf, 17));
    let g = grid.network_death_s.unwrap();
    for (name, r) in [("ECGRID", &ecgrid), ("GAF", &gaf)] {
        match r.network_death_s {
            None => {} // survived the whole run: clearly longer
            Some(t) => assert!(t > g + 200.0, "{name} died at {t}, GRID at {g}"),
        }
    }
}

#[test]
fn aen_curves_are_monotone_and_bounded() {
    for p in ProtocolKind::ALL {
        let r = run_scenario(&scenario(p, 19));
        let pts = r.aen.points();
        assert!(
            pts.windows(2).all(|w| w[1].value >= w[0].value - 1e-12),
            "{} aen not monotone",
            p.name()
        );
        assert!(
            pts.iter().all(|pt| (0.0..=1.0 + 1e-9).contains(&pt.value)),
            "{} aen out of range",
            p.name()
        );
        // alive fraction is monotone non-increasing
        let alive = r.alive.points();
        assert!(
            alive.windows(2).all(|w| w[1].value <= w[0].value + 1e-12),
            "{} alive not monotone",
            p.name()
        );
    }
}

#[test]
fn grid_lifetime_is_density_independent_but_ecgrid_scales() {
    // §4D in miniature: doubling density doesn't help GRID but helps ECGRID
    let mut sparse_g = scenario(ProtocolKind::Grid, 23);
    sparse_g.n_hosts = 40;
    let mut dense_g = scenario(ProtocolKind::Grid, 23);
    dense_g.n_hosts = 80;
    let g1 = run_scenario(&sparse_g).network_death_s.unwrap();
    let g2 = run_scenario(&dense_g).network_death_s.unwrap();
    assert!(
        (g1 - g2).abs() < 60.0,
        "GRID death {g1} vs {g2} should not depend on density"
    );

    let mut sparse_e = scenario(ProtocolKind::Ecgrid, 23);
    sparse_e.n_hosts = 40;
    sparse_e.duration_secs = 900.0;
    let mut dense_e = scenario(ProtocolKind::Ecgrid, 23);
    dense_e.n_hosts = 80;
    dense_e.duration_secs = 900.0;
    let e1 = run_scenario(&sparse_e);
    let e2 = run_scenario(&dense_e);
    // compare alive fraction at 800 s: more hosts per grid = more rotation
    let a1 = e1.alive.value_at(800.0).unwrap();
    let a2 = e2.alive.value_at(800.0).unwrap();
    assert!(
        a2 >= a1 - 0.05,
        "denser ECGRID should stay at least as alive: {a1:.2} (40 hosts) vs {a2:.2} (80 hosts)"
    );
}
