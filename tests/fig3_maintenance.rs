//! The paper's Fig. 3 route-maintenance situations: a streaming source
//! (initially a gateway) roams out of its grid; the abandoned grid
//! re-elects, the source re-anchors, and the flow survives.

use ecgrid_suite::ecgrid::{Ecgrid, EcgridConfig};
use ecgrid_suite::manet::{
    FlowSet, GridCoord, HostSetup, NodeId, Point2, SimDuration, SimTime, World, WorldConfig,
};
use ecgrid_suite::mobility::{MobilityTrace, Segment};
use ecgrid_suite::traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(500_000_000_000);

fn still(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

/// Source dwells at the center of grid (1,2) for 30 s, then drives east
/// along the route's corridor (Fig. 3(a): roaming into the next grid on
/// the route).
fn roaming_source() -> HostSetup {
    let dwell = Segment::rest(SimTime::ZERO, SimTime::from_secs(30), Point2::new(150.0, 250.0));
    let roam = Segment::travel(dwell.end, dwell.from, Point2::new(380.0, 250.0), 2.0);
    let rest = Segment::rest(roam.end, HORIZON, roam.end_position());
    HostSetup::paper(MobilityTrace::new(vec![dwell, roam, rest]))
}

fn maintenance_world() -> World<Ecgrid> {
    let hosts = vec![
        roaming_source(),    // 0: S
        still(130.0, 270.0), // 1: stays to inherit grid (1,2)
        still(250.0, 250.0), // 2: B, gateway (2,2)
        still(350.0, 250.0), // 3: E, gateway (3,2)
        still(450.0, 250.0), // 4: F, gateway (4,2)
        still(550.0, 250.0), // 5: D, destination (5,2)
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(5),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(180),
        burst: None,
    }]);
    World::new(WorldConfig::paper_default(9), hosts, flows, |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    })
}

#[test]
fn roaming_gateway_source_keeps_the_flow_alive() {
    let mut w = maintenance_world();
    w.run_until(SimTime::from_secs(25));
    // before roaming: S is the gateway of (1,2) and the flow runs
    assert!(w.protocol(NodeId(0)).is_gateway());
    assert_eq!(w.node_cell(NodeId(0)), GridCoord::new(1, 2));
    let early = w.ledger().delivery_rate().unwrap();
    assert!(early >= 0.9, "pdr before roaming {early}");

    w.run_until(SimTime::from_secs(190));
    // S crossed several grids: it must have retired from (1,2)
    assert!(
        w.protocol(NodeId(0)).stats.retires >= 1,
        "departing gateway must RETIRE"
    );
    assert!(w.node_cell(NodeId(0)).x >= 3);
    // the abandoned grid re-elected its remaining host
    assert!(
        w.protocol(NodeId(1)).is_gateway() && w.node_cell(NodeId(1)) == GridCoord::new(1, 2),
        "host 1 must inherit grid (1,2), got {:?} in {}",
        w.protocol(NodeId(1)).role(),
        w.node_cell(NodeId(1))
    );
    // and the stream survived the handoffs end-to-end
    let pdr = w.ledger().delivery_rate().unwrap();
    assert!(pdr >= 0.85, "pdr across roaming {pdr}");
    assert_eq!(w.ledger().sent_count(), 175);
}

#[test]
fn roaming_member_notifies_gateway_with_leave() {
    // a *member* (not gateway) roams away: §3.2 says it unicasts its
    // departure; the old gateway drops it from the host table
    let dwell = Segment::rest(SimTime::ZERO, SimTime::from_secs(20), Point2::new(130.0, 230.0));
    let roam = Segment::travel(dwell.end, dwell.from, Point2::new(330.0, 230.0), 5.0);
    let rest = Segment::rest(roam.end, HORIZON, roam.end_position());
    let hosts = vec![
        still(150.0, 250.0), // 0: gateway of (1,2) (center-closest)
        HostSetup::paper(MobilityTrace::new(vec![dwell, roam, rest])), // 1: roams with a dwell-waking sleep
        still(250.0, 250.0), // 2: gateway of (2,2)
        still(350.0, 250.0), // 3: gateway of (3,2)
    ];
    let mut w = World::new(WorldConfig::paper_default(4), hosts, FlowSet::default(), |id| {
        Ecgrid::new(EcgridConfig::default(), id)
    });
    w.run_until(SimTime::from_secs(80));
    // the mover ended in grid (3,2) and is integrated there (member or
    // even gateway after elections)
    assert_eq!(w.node_cell(NodeId(1)), GridCoord::new(3, 2));
    let role = w.protocol(NodeId(1)).role();
    assert!(
        role != ecgrid_suite::ecgrid::Role::Electing,
        "mover must have settled, got {role:?}"
    );
    // it woke via its dwell timer at least once while crossing
    assert!(w.stats().cell_crossings >= 2);
}
