//! Digest-proving equivalence of the two neighbor-query modes.
//!
//! The spatial index is only admissible if it is *invisible*: a run under
//! `NeighborIndex::Grid` must replay bit-for-bit like the brute-force
//! reference scan — same candidate sets, same touch order, same energy
//! integration steps, same trace events at the same instants.  These tests
//! prove it the strong way, by digest:
//!
//! * grid mode reproduces the committed `tests/golden/*.digest` fixtures
//!   (the fixtures predate the index, so this also proves the index
//!   changed nothing against history);
//! * brute and grid digests agree on clean runs for every protocol;
//! * they still agree under the chaos fault plan (churn, frame loss, page
//!   loss), where death-pruning and crash handling get exercised hard.

use ecgrid_suite::manet::{FaultPlan, NeighborIndex};
use ecgrid_suite::runner::{run_scenario_with, ProtocolKind, RunOptions, Scenario};
use ecgrid_suite::trace::TraceDigest;
use std::path::PathBuf;

/// The golden scenario (keep in sync with `tests/golden_trace.rs`).
fn golden(protocol: ProtocolKind) -> Scenario {
    Scenario {
        protocol,
        n_hosts: 30,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 3,
        flow_rate_pps: 1.0,
        duration_secs: 40.0,
        seed: 11,
        model1_endpoints: 4,
    }
}

const PROTOCOLS: [ProtocolKind; 3] = [ProtocolKind::Ecgrid, ProtocolKind::Grid, ProtocolKind::Gaf];

/// The chaos plan pinned by the faulted golden fixtures.
fn golden_plan() -> FaultPlan {
    FaultPlan::parse("loss=0.15,churn=0.02,rejoin=3,page_fail=0.1").unwrap()
}

fn read_fixture(name: &str) -> TraceDigest {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.digest"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    TraceDigest::parse(&text).unwrap_or_else(|| panic!("unparseable fixture {}", path.display()))
}

#[test]
fn grid_index_reproduces_the_golden_fixtures() {
    for p in PROTOCOLS {
        let opts = RunOptions::digest().with_neighbor_index(NeighborIndex::Grid);
        let r = run_scenario_with(&golden(p), opts);
        let got = r.trace_digest.expect("tracing was enabled");
        let want = read_fixture(&p.name().to_lowercase());
        assert_eq!(
            got, want,
            "{p:?}: grid-index run drifted from the pre-index golden fixture"
        );
    }
}

#[test]
fn brute_and_grid_digests_agree_on_clean_runs() {
    for p in PROTOCOLS {
        let sc = golden(p);
        let brute = run_scenario_with(
            &sc,
            RunOptions::digest().with_neighbor_index(NeighborIndex::Brute),
        );
        let grid = run_scenario_with(&sc, RunOptions::digest().with_neighbor_index(NeighborIndex::Grid));
        assert_eq!(
            brute.trace_digest, grid.trace_digest,
            "{p:?}: neighbor-query modes diverged"
        );
        assert_eq!(brute.stats, grid.stats, "{p:?}");
        assert_eq!(brute.pdr, grid.pdr, "{p:?}");
        assert_eq!(brute.latency_ms, grid.latency_ms, "{p:?}");
    }
}

#[test]
fn brute_and_grid_digests_agree_under_chaos() {
    // Crashes, rejoins, frame loss and page loss stress exactly the paths
    // where the modes could drift: membership pruning, stale-cell reads,
    // receiver freezing around dead/crashed hosts.  Also pin both against
    // the faulted fixtures so this can never silently become a vacuous
    // "equal but both wrong" pass.
    for p in PROTOCOLS {
        let sc = golden(p);
        let base = RunOptions::digest().with_faults(golden_plan());
        let brute = run_scenario_with(&sc, base.with_neighbor_index(NeighborIndex::Brute));
        let grid = run_scenario_with(&sc, base.with_neighbor_index(NeighborIndex::Grid));
        assert_eq!(
            brute.trace_digest, grid.trace_digest,
            "{p:?}: neighbor-query modes diverged under faults"
        );
        assert_eq!(brute.stats, grid.stats, "{p:?}");
        let want = read_fixture(&format!("{}_faulted", p.name().to_lowercase()));
        assert_eq!(grid.trace_digest, Some(want), "{p:?}: faulted fixture drift");
        assert!(
            grid.stats.crashes > 0 && grid.stats.frames_lost_fault > 0,
            "{p:?}: the chaos plan must actually engage"
        );
    }
}

#[test]
fn modes_agree_on_a_denser_run_with_node_deaths() {
    // The golden scenario is small and nobody dies in 40 s; give the
    // index real churn — more hosts, faster motion, battery-drain faults
    // that kill a third of the population — so bucket moves *and* death
    // pruning fire many times before we call the modes equivalent.
    // (Span rides along: it has no golden fixture but must obey the same
    // contract.)
    let plan = FaultPlan::parse("drain=0.02,drain_frac=0.9").unwrap();
    for p in [ProtocolKind::Ecgrid, ProtocolKind::Span] {
        let sc = Scenario {
            protocol: p,
            n_hosts: 60,
            max_speed: 5.0,
            pause_secs: 0.0,
            n_flows: 5,
            flow_rate_pps: 1.0,
            duration_secs: 80.0,
            seed: 23,
            model1_endpoints: 4,
        };
        let base = RunOptions::digest().with_faults(plan);
        let brute = run_scenario_with(&sc, base.with_neighbor_index(NeighborIndex::Brute));
        let grid = run_scenario_with(&sc, base.with_neighbor_index(NeighborIndex::Grid));
        assert_eq!(
            brute.trace_digest, grid.trace_digest,
            "{p:?}: modes diverged on the dense scenario"
        );
        assert_eq!(brute.stats, grid.stats, "{p:?}");
        assert!(
            grid.stats.cell_crossings > 50,
            "{p:?}: the dense scenario must churn the index (got {} crossings)",
            grid.stats.cell_crossings
        );
        assert!(
            grid.stats.deaths > 10,
            "{p:?}: the drain plan must actually kill hosts (got {} deaths)",
            grid.stats.deaths
        );
    }
}
