//! Cross-crate property-based tests (proptest) on simulator invariants.

use ecgrid_suite::energy::{Battery, EnergyMeter, PowerProfile, RadioMode};
use ecgrid_suite::geo::{GridMap, Point2, Vec2};
use ecgrid_suite::mobility::{MobilityModel, RandomWaypoint};
use ecgrid_suite::radio::NodeId;
use ecgrid_suite::sim_engine::{derive_seed, SimDuration, SimTime};
use ecgrid_suite::trace::{Event, EventKind, Histogram, Recorder, Registry, TraceMode};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    /// Any in-field point maps to an in-field cell, and the cell's center
    /// is within half a cell diagonal of the point.
    #[test]
    fn cell_mapping_is_total_and_local(x in 0.0..1000.0f64, y in 0.0..1000.0f64) {
        let m = GridMap::paper_default();
        let p = Point2::new(x, y);
        let c = m.cell_of(p);
        prop_assert!(m.contains_cell(c));
        let center = m.cell_center(c);
        let half_diag = m.cell_side() * std::f64::consts::SQRT_2 / 2.0;
        prop_assert!(p.distance(center) <= half_diag + 1e-9);
    }

    /// The dwell estimate is exact for linear motion: after `dwell` seconds
    /// the host is still in (or exactly on the boundary of) its cell, and
    /// shortly after it has left (when uncapped).
    #[test]
    fn dwell_estimate_is_exact(
        x in 50.0..950.0f64,
        y in 50.0..950.0f64,
        vx in -10.0..10.0f64,
        vy in -10.0..10.0f64,
    ) {
        prop_assume!(vx.abs() > 0.01 || vy.abs() > 0.01);
        let m = GridMap::paper_default();
        let p = Point2::new(x, y);
        let v = Vec2::new(vx, vy);
        let dwell = ecgrid_suite::geo::crossing::dwell_duration(&m, p, v, 1e6);
        if dwell < 1e6 {
            let before = p + v * (dwell * 0.999);
            prop_assert_eq!(m.cell_of(before), m.cell_of(p));
            let after = p + v * (dwell + 0.01);
            // only check if `after` stays in the field
            if (0.0..=1000.0).contains(&after.x) && (0.0..=1000.0).contains(&after.y) {
                prop_assert_ne!(m.cell_of(after), m.cell_of(p));
            }
        }
    }

    /// Energy consumption is monotone and mode-independent in total order:
    /// any interleaving of mode switches never decreases consumed energy,
    /// and never exceeds capacity.
    #[test]
    fn energy_is_monotone_under_random_switching(
        switches in proptest::collection::vec((0u64..100, 0u8..4), 1..40)
    ) {
        let mut m = EnergyMeter::new(PowerProfile::paper_default(), Battery::with_capacity(500.0));
        let mut t = 0u64;
        let mut last = 0.0f64;
        for (dt, mode) in switches {
            t += dt;
            let mode = match mode {
                0 => RadioMode::Idle,
                1 => RadioMode::Sleep,
                2 => RadioMode::Tx,
                _ => RadioMode::Rx,
            };
            m.set_mode(SimTime::from_secs(t), mode);
            let consumed = m.consumed_j();
            prop_assert!(consumed >= last - 1e-12);
            prop_assert!(consumed <= 500.0 + 1e-9);
            last = consumed;
        }
    }

    /// A random-waypoint trace never leaves the field and is continuous:
    /// position changes by at most max_speed × dt between samples.
    #[test]
    fn rwp_traces_are_continuous_and_bounded(seed in 0u64..1000, speed in 0.5..10.0f64) {
        let model = RandomWaypoint::paper(speed, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let trace = model.build_trace(&mut rng, SimTime::from_secs(200));
        let mut prev = trace.position_at(SimTime::ZERO);
        for s in 1..=200u64 {
            let p = trace.position_at(SimTime::from_secs(s));
            prop_assert!((-1e-6..=1000.0 + 1e-6).contains(&p.x), "{p:?}");
            prop_assert!((-1e-6..=1000.0 + 1e-6).contains(&p.y), "{p:?}");
            prop_assert!(p.distance(prev) <= speed * 1.0 + 1e-6, "jump {}", p.distance(prev));
            prev = p;
        }
    }

    /// Cell-crossing enumeration agrees with position sampling: at every
    /// reported crossing instant the cell really changes to the reported
    /// cell.
    #[test]
    fn crossings_match_positions(seed in 0u64..300) {
        let model = RandomWaypoint::paper(10.0, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let trace = model.build_trace(&mut rng, SimTime::from_secs(120));
        let m = GridMap::paper_default();
        let mut t = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, into)) = trace.next_cell_crossing(&m, t) {
            // just after the crossing the trace is in the reported cell
            let after = at + SimDuration::from_micros(10);
            prop_assert_eq!(trace.cell_at(&m, after), into);
            t = after;
            count += 1;
            prop_assert!(count < 10_000, "runaway crossings");
        }
    }

    /// Seed derivation never collides across adjacent (domain, index)
    /// pairs in practice.
    #[test]
    fn derived_seeds_are_distinct(master in any::<u64>(), i in 0u64..500) {
        prop_assert_ne!(derive_seed(master, "a", i), derive_seed(master, "a", i + 1));
        prop_assert_ne!(derive_seed(master, "a", i), derive_seed(master, "b", i));
    }

    /// Battery drain math: seconds_until_empty inverts drain exactly.
    #[test]
    fn battery_prediction_inverts_drain(cap in 1.0..1000.0f64, draw in 0.01..5.0f64) {
        let b = Battery::with_capacity(cap);
        let secs = b.seconds_until_empty(draw).unwrap();
        let mut b2 = Battery::with_capacity(cap);
        b2.drain(draw * secs * 0.999);
        prop_assert!(!b2.is_empty());
        b2.drain(draw * secs * 0.002);
        prop_assert!(b2.is_empty());
    }
}

// ---------------------------------------------------------------------------
// Observability-layer properties (crates/trace).
// ---------------------------------------------------------------------------

/// A synthetic but deterministic event stream: timestamps strictly increase,
/// addressing fields vary with the seed.
fn synth_events(n: usize, seed: u64) -> Vec<Event> {
    (0..n)
        .map(|i| {
            let s = derive_seed(seed, "synth-event", i as u64);
            Event {
                t: SimTime::from_micros(i as u64 * 100 + s % 50),
                kind: EventKind::PacketSent {
                    src: NodeId((s % 7) as u32),
                    flow: (s % 3) as u32,
                    seq: i as u64,
                },
            }
        })
        .collect()
}

fn digest_of(events: &[Event]) -> u64 {
    let mut r = Recorder::new(TraceMode::DigestOnly);
    for &e in events {
        r.record(e);
    }
    r.digest().0
}

proptest! {
    /// Nearest-rank percentiles are monotone in q and always bounded by the
    /// sample min/max.
    #[test]
    fn histogram_percentiles_monotone_and_bounded(
        samples in proptest::collection::vec(-1e6..1e6f64, 1..200),
        qs in proptest::collection::vec(0.0..=1.0f64, 2..20),
    ) {
        let mut qs = qs;
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len());
        let (min, max) = (h.min().unwrap(), h.max().unwrap());
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let p = h.percentile(q).unwrap();
            prop_assert!(p >= last, "percentile({q}) = {p} < previous {last}");
            prop_assert!((min..=max).contains(&p), "percentile({q}) = {p} outside [{min}, {max}]");
            last = p;
        }
    }

    /// Counters never decrease under any interleaving of adds — increment
    /// is the only operation the registry offers.
    #[test]
    fn registry_counters_are_monotone(
        ops in proptest::collection::vec((0usize..4, 0u64..1000), 1..100)
    ) {
        let names = ["mac.tx", "mac.rx", "route.forwarded", "app.sent"];
        let mut r = Registry::new();
        let mut last = [0u64; 4];
        for (which, delta) in ops {
            r.counter_add(names[which], delta);
            for (j, name) in names.iter().enumerate() {
                let v = r.counter(name);
                prop_assert!(v >= last[j], "{name} went from {} to {v}", last[j]);
                last[j] = v;
            }
        }
    }

    /// The replay digest detects any single-event perturbation: nudging a
    /// timestamp, changing a payload field, or dropping the event each
    /// produce a different digest.
    #[test]
    fn digest_detects_any_single_event_perturbation(
        n in 2usize..40,
        pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let base = synth_events(n, seed);
        let baseline = digest_of(&base);
        let idx = (pick % n as u64) as usize;

        let mut nudged = base.clone();
        nudged[idx].t += SimDuration::from_nanos(1);
        prop_assert_ne!(digest_of(&nudged), baseline, "timestamp nudge at #{idx} went unnoticed");

        let mut reseq = base.clone();
        if let EventKind::PacketSent { seq, .. } = &mut reseq[idx].kind {
            *seq += 1_000_000;
        }
        prop_assert_ne!(digest_of(&reseq), baseline, "field change at #{idx} went unnoticed");

        let mut dropped = base.clone();
        dropped.remove(idx);
        prop_assert_ne!(digest_of(&dropped), baseline, "dropping #{idx} went unnoticed");

        let mut swapped = base.clone();
        if idx + 1 < n {
            // order matters even between distinct events at equal rank
            swapped.swap(idx, idx + 1);
            if swapped[idx] != base[idx] {
                prop_assert_ne!(digest_of(&swapped), baseline, "reorder at #{idx} went unnoticed");
            }
        }
    }
}
