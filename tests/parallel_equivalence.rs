//! The conservative-sync test wall: the sharded parallel engine must be
//! *bit-for-bit* indistinguishable from the serial one.
//!
//! PR 7 added `--parallel-world`: the field is cut into K vertical strips
//! of grid-cell columns, each with its own event queue, event slab, and
//! channel bookkeeping, merged at every pop in deterministic
//! `(time, queue_seq)` order (see DESIGN.md §12).  Nothing about that
//! reorganization may show in a trace — same dispatch order, same RNG
//! draws, same energy-integration sequences, same digest.  These tests
//! hold the claim to account the same way the SoA and neighbor-index PRs
//! did, by digest, against fixtures that predate the sharded engine:
//!
//! * every committed golden fixture reproduces under K ∈ {1, 2, 4, 7}
//!   (1 exercises the degenerate single-strip engine, 2 and 4 split the
//!   10-column paper grid evenly-ish, 7 forces ragged 2/1-column strips);
//! * the faulted fixtures reproduce too, so crash freezing, fault RNG
//!   streams, and death pruning agree across the boundary mirrors;
//! * a heavy-drain run whose hosts die *and* migrate between strips
//!   mid-run digests identically, with the migrations proven to happen.
//!
//! PR 9 added `--threads T`: the host-plane kernels (energy integration,
//! mobility evaluation, reception verdicts, paging scans) fan out over a
//! worker pool while dispatch and every state commit stay serial (see
//! DESIGN.md §14).  The same wall now runs on a threads axis: every
//! fixture must reproduce at K=4 × T ∈ {1, 2, 4}, and a dense scenario
//! large enough to actually engage the parallel kernels must agree with
//! its serial twin event-for-event.

use ecgrid_suite::manet::{FaultPlan, NeighborIndex};
use ecgrid_suite::runner::{run_scenario_with, ProtocolKind, RunOptions, Scenario};
use ecgrid_suite::trace::TraceDigest;
use std::path::PathBuf;

/// The golden scenario (keep in sync with `tests/golden_trace.rs`).
fn golden(protocol: ProtocolKind) -> Scenario {
    Scenario {
        protocol,
        n_hosts: 30,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 3,
        flow_rate_pps: 1.0,
        duration_secs: 40.0,
        seed: 11,
        model1_endpoints: 4,
    }
}

const PROTOCOLS: [ProtocolKind; 3] = [ProtocolKind::Ecgrid, ProtocolKind::Grid, ProtocolKind::Gaf];

/// Strip counts under test: degenerate, even, the CLI default, and a
/// ragged split of the paper's 10 columns (strips of 2 and 1 columns).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// The chaos plan pinned by the faulted golden fixtures.
fn golden_plan() -> FaultPlan {
    FaultPlan::parse("loss=0.15,churn=0.02,rejoin=3,page_fail=0.1").unwrap()
}

fn read_fixture(name: &str) -> TraceDigest {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.digest"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    TraceDigest::parse(&text).unwrap_or_else(|| panic!("unparseable fixture {}", path.display()))
}

#[test]
fn sharded_engine_reproduces_the_golden_fixtures_at_every_shard_count() {
    for p in PROTOCOLS {
        let want = read_fixture(&p.name().to_lowercase());
        for k in SHARD_COUNTS {
            let r = run_scenario_with(&golden(p), RunOptions::digest().with_parallel_world(k));
            assert_eq!(
                r.trace_digest,
                Some(want),
                "{p:?}: sharded run (K={k}) drifted from the golden fixture"
            );
        }
    }
}

#[test]
fn sharded_engine_reproduces_the_faulted_fixtures_at_every_shard_count() {
    // Faults are the adversarial case for shard assignment: crash/rejoin
    // chains, per-node fault RNG draws keyed by dispatch order, and frame
    // losses drawn *during* tx_end all must land identically.
    for p in PROTOCOLS {
        let want = read_fixture(&format!("{}_faulted", p.name().to_lowercase()));
        for k in SHARD_COUNTS {
            let r = run_scenario_with(
                &golden(p),
                RunOptions::digest()
                    .with_faults(golden_plan())
                    .with_parallel_world(k),
            );
            assert_eq!(
                r.trace_digest,
                Some(want),
                "{p:?}: faulted sharded run (K={k}) drifted from the fixture"
            );
            assert!(
                r.stats.crashes > 0 && r.stats.frames_lost_fault > 0,
                "{p:?} (K={k}): the chaos plan must actually engage"
            );
        }
    }
}

#[test]
fn serial_and_sharded_agree_while_deaths_and_migrations_cross_strips() {
    // The hard case for shard ownership: hosts at 2 m/s cross strip
    // boundaries mid-run (events migrate queues) while a heavy drain plan
    // kills others (shard membership shrinks).  Serial and sharded runs
    // must agree on everything — digest and stats — and the run must
    // actually exercise both hazards.
    let sc = Scenario {
        protocol: ProtocolKind::Ecgrid,
        n_hosts: 120,
        max_speed: 2.0,
        pause_secs: 0.0,
        n_flows: 5,
        flow_rate_pps: 1.0,
        duration_secs: 30.0,
        seed: 17,
        model1_endpoints: 4,
    };
    let plan = FaultPlan::parse("drain=0.2,drain_frac=0.95,churn=0.02,rejoin=2").unwrap();
    let base = RunOptions::digest()
        .with_faults(plan)
        .with_neighbor_index(NeighborIndex::Grid);
    let serial = run_scenario_with(&sc, base);
    assert!(
        serial.stats.deaths > 0,
        "drain plan produced no deaths; the scenario lost its teeth"
    );
    for k in SHARD_COUNTS {
        let sharded = run_scenario_with(&sc, base.with_parallel_world(k));
        assert_eq!(
            sharded.trace_digest, serial.trace_digest,
            "sharded run (K={k}) diverged from serial under drain + migration"
        );
        assert_eq!(sharded.stats, serial.stats, "stats drift at K={k}");
    }
}

/// Worker-lane counts under test: inline, a split, and the CI smoke's T.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

#[test]
fn threaded_engine_reproduces_the_golden_fixtures_at_every_thread_count() {
    for p in PROTOCOLS {
        let want = read_fixture(&p.name().to_lowercase());
        for t in THREAD_COUNTS {
            let r = run_scenario_with(
                &golden(p),
                RunOptions::digest().with_parallel_world(4).with_threads(t),
            );
            assert_eq!(
                r.trace_digest,
                Some(want),
                "{p:?}: threaded run (K=4, T={t}) drifted from the golden fixture"
            );
            assert_eq!(r.engine, Some((4, t)), "{p:?}: engine echo wrong at T={t}");
        }
    }
}

#[test]
fn threaded_engine_reproduces_the_faulted_fixtures_at_every_thread_count() {
    // Faults are the adversarial case for the two-phase kernels: the
    // stateful frame-loss draws must happen in the serial commit phase in
    // exactly the serial order, or the whole RNG stream shears.
    for p in PROTOCOLS {
        let want = read_fixture(&format!("{}_faulted", p.name().to_lowercase()));
        for t in THREAD_COUNTS {
            let r = run_scenario_with(
                &golden(p),
                RunOptions::digest()
                    .with_faults(golden_plan())
                    .with_parallel_world(4)
                    .with_threads(t),
            );
            assert_eq!(
                r.trace_digest,
                Some(want),
                "{p:?}: faulted threaded run (K=4, T={t}) drifted from the fixture"
            );
        }
    }
}

#[test]
fn threaded_engine_agrees_while_deaths_and_migrations_cross_strips() {
    // The drain+migration hazard from the sharded wall, on the threads
    // axis: deaths discovered inside parallel probe kernels must commit
    // in serial order while strip membership shrinks and hosts migrate.
    let sc = Scenario {
        protocol: ProtocolKind::Ecgrid,
        n_hosts: 120,
        max_speed: 2.0,
        pause_secs: 0.0,
        n_flows: 5,
        flow_rate_pps: 1.0,
        duration_secs: 30.0,
        seed: 17,
        model1_endpoints: 4,
    };
    let plan = FaultPlan::parse("drain=0.2,drain_frac=0.95,churn=0.02,rejoin=2").unwrap();
    let base = RunOptions::digest()
        .with_faults(plan)
        .with_neighbor_index(NeighborIndex::Grid);
    let serial = run_scenario_with(&sc, base);
    assert!(serial.stats.deaths > 0, "drain plan produced no deaths");
    for t in THREAD_COUNTS {
        let threaded = run_scenario_with(&sc, base.with_parallel_world(4).with_threads(t));
        assert_eq!(
            threaded.trace_digest, serial.trace_digest,
            "threaded run (K=4, T={t}) diverged from serial under drain + migration"
        );
        assert_eq!(threaded.stats, serial.stats, "stats drift at T={t}");
    }
}

#[test]
fn threaded_engine_agrees_on_a_scenario_dense_enough_to_engage_the_kernels() {
    // The golden scenario's 30 hosts stay under the parallel engagement
    // threshold — its value above is fixture equality, not kernel
    // coverage.  This scenario's host count is far above the threshold,
    // so every sample tick and paging scan actually crosses the worker
    // pool, and the faulted variant routes deaths and battery-level
    // changes through the barrier mailbox.
    let sc = Scenario {
        protocol: ProtocolKind::Ecgrid,
        n_hosts: 300,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 4,
        flow_rate_pps: 1.0,
        duration_secs: 25.0,
        seed: 23,
        model1_endpoints: 4,
    };
    for plan in [FaultPlan::none(), golden_plan()] {
        let base = RunOptions::digest().with_faults(plan);
        let serial = run_scenario_with(&sc, base);
        for t in THREAD_COUNTS {
            let threaded = run_scenario_with(&sc, base.with_parallel_world(4).with_threads(t));
            assert_eq!(
                threaded.trace_digest, serial.trace_digest,
                "dense threaded run (K=4, T={t}) diverged from serial"
            );
            assert_eq!(threaded.stats, serial.stats, "stats drift at T={t}");
        }
    }
}

#[test]
fn auto_parallelism_resolves_and_reproduces_the_fixture() {
    // shards=0 / threads=0 mean "derive from the host"; whatever the
    // host resolves to, the digest must still match the fixture, and the
    // resolved values must be echoed in the result.
    let want = read_fixture("ecgrid");
    let r = run_scenario_with(
        &golden(ProtocolKind::Ecgrid),
        RunOptions::digest().with_parallel_world(0).with_threads(0),
    );
    assert_eq!(
        r.trace_digest,
        Some(want),
        "auto-parallel run drifted from the golden fixture"
    );
    let (k, t) = r.engine.expect("parallel run must echo its engine");
    assert!(k >= 1, "auto shards resolved to {k}");
    assert!(t >= 1 && t <= k, "auto threads resolved to {t} (K={k})");
}

#[test]
fn sharding_is_orthogonal_to_the_other_digest_neutral_knobs() {
    // Every engine knob claims digest-neutrality; the claims must compose.
    // Brute neighbor mode on the sharded engine still has to match the
    // fixture recorded on the serial grid-mode engine.
    let want = read_fixture("ecgrid");
    let r = run_scenario_with(
        &golden(ProtocolKind::Ecgrid),
        RunOptions::digest()
            .with_neighbor_index(NeighborIndex::Brute)
            .with_parallel_world(4),
    );
    assert_eq!(
        r.trace_digest,
        Some(want),
        "sharded + brute-index run drifted from the golden fixture"
    );
}

/// A fleet whose radio ranges differ per group, with movement that drags
/// short- and long-range hosts across shard-strip boundaries: per-tx
/// ranges must not perturb the mirror-write predicate (sized from the
/// fleet maximum) or the deterministic merge order.  K = 4 over the
/// 1000 m field makes 250 m strips, so a 120 m transmission near a seam
/// is mirrored by the conservative max-range rule yet must stay
/// inaudible beyond its own disc on both engines, at T = 1 and T = 4.
#[test]
fn heterogeneous_ranges_agree_across_shard_strips() {
    const MIXED_RANGES: &str = r#"
[scenario]
name = "mixed-ranges"
duration_s = 30
seed = 23

[[group]]
name = "short"
count = 18
mobility = "waypoint"
max_speed = 6.0
range_m = 120

[[group]]
name = "long"
count = 14
mobility = "waypoint"
max_speed = 6.0
range_m = 250

[traffic]
flows = 4
rate_pps = 1.0
"#;
    let spec = ecgrid_suite::scenario::parse(MIXED_RANGES).unwrap();
    let serial = ecgrid_suite::runner::run_spec(&spec, ProtocolKind::Ecgrid, RunOptions::digest());
    let want = serial.trace_digest.expect("tracing was enabled");
    for t in [1, 4] {
        let par = ecgrid_suite::runner::run_spec(
            &spec,
            ProtocolKind::Ecgrid,
            RunOptions::digest().with_parallel_world(4).with_threads(t),
        );
        assert_eq!(
            par.trace_digest,
            Some(want),
            "K=4 T={t}: heterogeneous ranges diverged from serial"
        );
        assert_eq!(par.stats, serial.stats, "K=4 T={t}");
        assert_eq!(par.pdr, serial.pdr, "K=4 T={t}");
    }
    // the short radios genuinely constrained connectivity (the knob is
    // live): an all-250 m rerun of the same fleet behaves differently
    let all_long =
        ecgrid_suite::scenario::parse(&MIXED_RANGES.replace("range_m = 120", "range_m = 250")).unwrap();
    let wide = ecgrid_suite::runner::run_spec(&all_long, ProtocolKind::Ecgrid, RunOptions::digest());
    assert_ne!(wide.trace_digest, Some(want), "per-group range_m had no effect");
}
