//! Golden-trace regression harness.
//!
//! The trace digest is a canonical FNV-1a 64 over every semantic event of a
//! run (tag byte + fixed-width little-endian fields, see `crates/trace`).
//! These tests hold the simulator to the determinism contract:
//!
//! * the digest is a pure function of (scenario, seed) — repeated runs agree,
//! * it does not depend on the scheduler backend (binary heap vs calendar
//!   queue),
//! * it does not depend on whether replicas run serially or fanned out
//!   across threads,
//! * an all-zero fault plan is bit-for-bit invisible (zero RNG draws), a
//!   non-trivial plan is itself deterministic, and
//! * it matches the committed fixtures under `tests/golden/` — one per
//!   protocol, plus one per protocol under a fixed fault plan — so *any*
//!   behavioural drift anywhere in the stack shows up as a failing diff
//!   here.
//!
//! To regenerate the fixtures after a deliberate behaviour change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```

use ecgrid_suite::manet::trace::TraceMode;
use ecgrid_suite::manet::{Backend, FaultPlan};
use ecgrid_suite::runner::{run_replicas, run_scenario_with, ProtocolKind, RunOptions, Scenario};
use std::path::PathBuf;

/// The canonical golden scenario: small enough to run in seconds in debug
/// builds, busy enough to exercise MAC contention, gateway churn, paging and
/// multi-hop forwarding.
fn golden(protocol: ProtocolKind) -> Scenario {
    Scenario {
        protocol,
        n_hosts: 30,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 3,
        flow_rate_pps: 1.0,
        duration_secs: 40.0,
        seed: 11,
        model1_endpoints: 4,
    }
}

const GOLDEN_PROTOCOLS: [ProtocolKind; 3] = [ProtocolKind::Ecgrid, ProtocolKind::Grid, ProtocolKind::Gaf];

fn fixture_path(p: ProtocolKind) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.digest", p.name().to_lowercase()))
}

/// The fixed adversarial plan pinned by the `*_faulted.digest` fixtures.
/// Touches every major injection path: frame loss, churn and page loss.
fn golden_plan() -> FaultPlan {
    FaultPlan::parse("loss=0.15,churn=0.02,rejoin=3,page_fail=0.1").unwrap()
}

fn faulted_fixture_path(p: ProtocolKind) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_faulted.digest", p.name().to_lowercase()))
}

#[test]
fn repeated_runs_produce_identical_digests() {
    for p in GOLDEN_PROTOCOLS {
        let sc = golden(p);
        let a = run_scenario_with(&sc, RunOptions::digest());
        let b = run_scenario_with(&sc, RunOptions::digest());
        let da = a.trace_digest.expect("tracing was enabled");
        let db = b.trace_digest.expect("tracing was enabled");
        assert_eq!(da, db, "{p:?}: same (scenario, seed) must replay bit-identically");
        assert_ne!(da.0, 0, "{p:?}: a non-empty run has a non-trivial digest");
    }
}

#[test]
fn digest_is_independent_of_scheduler_backend() {
    for p in GOLDEN_PROTOCOLS {
        let sc = golden(p);
        let heap = run_scenario_with(&sc, RunOptions::digest().with_backend(Backend::Heap));
        let cal = run_scenario_with(&sc, RunOptions::digest().with_backend(Backend::Calendar));
        assert_eq!(
            heap.trace_digest, cal.trace_digest,
            "{p:?}: heap and calendar backends must schedule identically"
        );
        // The digest covers semantics only — backends may differ in queue
        // profile, never in outcome.
        assert_eq!(heap.pdr, cal.pdr, "{p:?}");
        assert_eq!(heap.stats, cal.stats, "{p:?}");
    }
}

#[test]
fn digest_is_independent_of_sweep_parallelism() {
    // Replica k runs `replica_seed(sc.seed, k)` (a splitmix-derived stream,
    // so neighbouring base seeds never share replicas); fanning the
    // replicas out across rayon threads must not change any of them.
    let sc = golden(ProtocolKind::Ecgrid);
    let serial = run_replicas(&sc, 3, RunOptions::digest(), false);
    let parallel = run_replicas(&sc, 3, RunOptions::digest(), true);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.scenario.seed, p.scenario.seed);
        assert_eq!(
            s.trace_digest, p.trace_digest,
            "seed {}: serial and parallel replicas must agree",
            s.scenario.seed
        );
    }
    // ...and distinct seeds must not collide (the digest actually varies).
    assert_ne!(serial[0].trace_digest, serial[1].trace_digest);
}

#[test]
fn full_trace_mode_digests_like_digest_only() {
    // Buffering the events for export must not perturb the digest.
    let sc = golden(ProtocolKind::Grid);
    let lean = run_scenario_with(&sc, RunOptions::digest());
    let full = run_scenario_with(
        &sc,
        RunOptions {
            trace: Some(TraceMode::Full),
            ..RunOptions::default()
        },
    );
    assert_eq!(lean.trace_digest, full.trace_digest);
    let rec = full.recorder.expect("full trace kept");
    assert_eq!(rec.count() as usize, rec.events().len());
    assert!(rec.count() > 0);
}

/// Compare (or, under UPDATE_GOLDEN, rewrite) one digest fixture; push a
/// human-readable line into `mismatches` on drift.
fn check_fixture(
    label: &str,
    path: &PathBuf,
    got: ecgrid_suite::trace::TraceDigest,
    mismatches: &mut Vec<String>,
) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, format!("{got}\n")).unwrap();
        return;
    }
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let want = ecgrid_suite::trace::TraceDigest::parse(&text)
        .unwrap_or_else(|| panic!("unparseable fixture {}", path.display()));
    if got != want {
        mismatches.push(format!("{label}: fixture {want}, run produced {got}"));
    }
}

#[test]
fn digests_match_the_golden_fixtures() {
    let mut mismatches = Vec::new();
    for p in GOLDEN_PROTOCOLS {
        let sc = golden(p);
        let r = run_scenario_with(&sc, RunOptions::digest());
        let got = r.trace_digest.expect("tracing was enabled");
        check_fixture(p.name(), &fixture_path(p), got, &mut mismatches);
    }
    assert!(
        mismatches.is_empty(),
        "golden trace drift (deliberate change? rerun with UPDATE_GOLDEN=1):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn an_all_zero_fault_plan_is_bit_for_bit_invisible() {
    // The contract `FaultPlan::none()` documents: a plan with every knob at
    // zero performs no RNG draws at all, so attaching it — even with a
    // nonzero fault seed — cannot perturb a single event.
    for p in GOLDEN_PROTOCOLS {
        let sc = golden(p);
        let base = run_scenario_with(&sc, RunOptions::digest());
        let inert = FaultPlan {
            seed: 99,
            ..FaultPlan::none()
        };
        let faulted = run_scenario_with(&sc, RunOptions::digest().with_faults(inert));
        assert_eq!(
            base.trace_digest, faulted.trace_digest,
            "{p:?}: an inert fault plan changed the digest"
        );
        assert_eq!(base.stats, faulted.stats, "{p:?}");
    }
}

#[test]
fn faulted_runs_replay_deterministically_across_backends() {
    // A *non*-trivial plan is still a pure function of (scenario, fault
    // seed): repeated runs and both scheduler backends agree exactly.
    for p in GOLDEN_PROTOCOLS {
        let sc = golden(p);
        let opts = RunOptions::digest().with_faults(golden_plan());
        let a = run_scenario_with(&sc, opts);
        let heap = run_scenario_with(&sc, opts.with_backend(Backend::Heap));
        let cal = run_scenario_with(&sc, opts.with_backend(Backend::Calendar));
        assert_eq!(a.trace_digest, heap.trace_digest, "{p:?}: faulted replay drifted");
        assert_eq!(
            heap.trace_digest, cal.trace_digest,
            "{p:?}: faulted backends disagree"
        );
        assert_eq!(heap.stats, cal.stats, "{p:?}");
        assert!(
            heap.stats.frames_lost_fault > 0 && heap.stats.crashes > 0,
            "{p:?}: the golden plan must actually engage"
        );
    }
}

#[test]
fn faulted_digests_match_the_golden_fixtures() {
    // Same regression net as the clean fixtures, but with the fixed
    // adversarial plan switched on — drift in the fault layer itself (draw
    // order, injection points, seed derivation) lands here.
    let mut mismatches = Vec::new();
    for p in GOLDEN_PROTOCOLS {
        let sc = golden(p);
        let r = run_scenario_with(&sc, RunOptions::digest().with_faults(golden_plan()));
        let got = r.trace_digest.expect("tracing was enabled");
        let label = format!("{} (faulted)", p.name());
        check_fixture(&label, &faulted_fixture_path(p), got, &mut mismatches);
    }
    assert!(
        mismatches.is_empty(),
        "faulted golden trace drift (deliberate change? rerun with UPDATE_GOLDEN=1):\n{}",
        mismatches.join("\n")
    );
}
