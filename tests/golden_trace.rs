//! Golden-trace regression harness.
//!
//! The trace digest is a canonical FNV-1a 64 over every semantic event of a
//! run (tag byte + fixed-width little-endian fields, see `crates/trace`).
//! These tests hold the simulator to the determinism contract:
//!
//! * the digest is a pure function of (scenario, seed) — repeated runs agree,
//! * it does not depend on the scheduler backend (binary heap vs calendar
//!   queue),
//! * it does not depend on whether replicas run serially or fanned out
//!   across threads, and
//! * it matches the committed fixtures under `tests/golden/`, one per
//!   protocol, so *any* behavioural drift anywhere in the stack shows up as
//!   a failing diff here.
//!
//! To regenerate the fixtures after a deliberate behaviour change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```

use ecgrid_suite::manet::trace::TraceMode;
use ecgrid_suite::manet::Backend;
use ecgrid_suite::runner::{run_replicas, run_scenario_with, ProtocolKind, RunOptions, Scenario};
use std::path::PathBuf;

/// The canonical golden scenario: small enough to run in seconds in debug
/// builds, busy enough to exercise MAC contention, gateway churn, paging and
/// multi-hop forwarding.
fn golden(protocol: ProtocolKind) -> Scenario {
    Scenario {
        protocol,
        n_hosts: 30,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 3,
        flow_rate_pps: 1.0,
        duration_secs: 40.0,
        seed: 11,
        model1_endpoints: 4,
    }
}

const GOLDEN_PROTOCOLS: [ProtocolKind; 3] = [ProtocolKind::Ecgrid, ProtocolKind::Grid, ProtocolKind::Gaf];

fn fixture_path(p: ProtocolKind) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}.digest", p.name().to_lowercase()))
}

#[test]
fn repeated_runs_produce_identical_digests() {
    for p in GOLDEN_PROTOCOLS {
        let sc = golden(p);
        let a = run_scenario_with(&sc, RunOptions::digest());
        let b = run_scenario_with(&sc, RunOptions::digest());
        let da = a.trace_digest.expect("tracing was enabled");
        let db = b.trace_digest.expect("tracing was enabled");
        assert_eq!(da, db, "{p:?}: same (scenario, seed) must replay bit-identically");
        assert_ne!(da.0, 0, "{p:?}: a non-empty run has a non-trivial digest");
    }
}

#[test]
fn digest_is_independent_of_scheduler_backend() {
    for p in GOLDEN_PROTOCOLS {
        let sc = golden(p);
        let heap = run_scenario_with(&sc, RunOptions::digest().with_backend(Backend::Heap));
        let cal = run_scenario_with(&sc, RunOptions::digest().with_backend(Backend::Calendar));
        assert_eq!(
            heap.trace_digest, cal.trace_digest,
            "{p:?}: heap and calendar backends must schedule identically"
        );
        // The digest covers semantics only — backends may differ in queue
        // profile, never in outcome.
        assert_eq!(heap.pdr, cal.pdr, "{p:?}");
        assert_eq!(heap.stats, cal.stats, "{p:?}");
    }
}

#[test]
fn digest_is_independent_of_sweep_parallelism() {
    // Replica k runs seed sc.seed + k; fanning the replicas out across
    // rayon threads must not change any of them.
    let sc = golden(ProtocolKind::Ecgrid);
    let serial = run_replicas(&sc, 3, RunOptions::digest(), false);
    let parallel = run_replicas(&sc, 3, RunOptions::digest(), true);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.scenario.seed, p.scenario.seed);
        assert_eq!(
            s.trace_digest, p.trace_digest,
            "seed {}: serial and parallel replicas must agree",
            s.scenario.seed
        );
    }
    // ...and distinct seeds must not collide (the digest actually varies).
    assert_ne!(serial[0].trace_digest, serial[1].trace_digest);
}

#[test]
fn full_trace_mode_digests_like_digest_only() {
    // Buffering the events for export must not perturb the digest.
    let sc = golden(ProtocolKind::Grid);
    let lean = run_scenario_with(&sc, RunOptions::digest());
    let full = run_scenario_with(
        &sc,
        RunOptions {
            trace: Some(TraceMode::Full),
            ..RunOptions::default()
        },
    );
    assert_eq!(lean.trace_digest, full.trace_digest);
    let rec = full.recorder.expect("full trace kept");
    assert_eq!(rec.count() as usize, rec.events().len());
    assert!(rec.count() > 0);
}

#[test]
fn digests_match_the_golden_fixtures() {
    let mut mismatches = Vec::new();
    for p in GOLDEN_PROTOCOLS {
        let sc = golden(p);
        let r = run_scenario_with(&sc, RunOptions::digest());
        let got = r.trace_digest.expect("tracing was enabled");
        let path = fixture_path(p);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, format!("{got}\n")).unwrap();
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); run with UPDATE_GOLDEN=1",
                path.display()
            )
        });
        let want = ecgrid_suite::trace::TraceDigest::parse(&text)
            .unwrap_or_else(|| panic!("unparseable fixture {}", path.display()));
        if got != want {
            mismatches.push(format!("{p:?}: fixture {want}, run produced {got}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden trace drift (deliberate change? rerun with UPDATE_GOLDEN=1):\n{}",
        mismatches.join("\n")
    );
}
