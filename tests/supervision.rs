//! Supervised sweep harness suite (DESIGN.md §9): panic isolation,
//! runaway watchdogs, bounded retry with quarantine, and journaled
//! checkpoint/resume.
//!
//! The failure injector here is a wrapper runner that runs the real
//! simulation and then detonates for designated scenarios/seeds — so the
//! progress probe carries genuine run state into the post-mortem, and a
//! successful retry produces a genuine result.
//!
//! The CI artifact test leaves its journal and quarantine report under
//! `target/supervision/` for upload on failure.

use ecgrid_suite::manet::FaultPlan;
use ecgrid_suite::runner::supervisor::{
    run_point, sweep_supervised, sweep_supervised_with, FailureKind, SupervisorConfig,
};
use ecgrid_suite::runner::{
    average_results_degraded, replica_seed, run_scenario_probed, sweep, write_atomic, AveragedResult,
    ProtocolKind, RunOptions, Scenario,
};
use ecgrid_suite::sim_engine::derive_seed;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Once;

/// The probe parameter every [`ScenarioRunner`] closure receives.
type Probe = Option<std::sync::Arc<ecgrid_suite::manet::ProgressProbe>>;

/// Quiet the default "thread panicked" stderr chatter from the injected
/// panics this suite catches by design (only affects this test binary).
fn quiet_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::panic::set_hook(Box::new(|_| {}));
    });
}

fn tiny(seed: u64, n_hosts: usize) -> Scenario {
    Scenario {
        protocol: ProtocolKind::Ecgrid,
        n_hosts,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 2,
        flow_rate_pps: 1.0,
        duration_secs: 30.0,
        seed,
        model1_endpoints: 2,
    }
}

fn artifacts_dir() -> PathBuf {
    let dir = PathBuf::from("target/supervision");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_bits_eq(a: &AveragedResult, b: &AveragedResult) {
    let opt = |v: Option<f64>| v.map(f64::to_bits);
    assert_eq!(opt(a.pdr), opt(b.pdr), "pdr bits differ");
    assert_eq!(opt(a.latency_ms), opt(b.latency_ms), "latency bits differ");
    assert_eq!(opt(a.pdr_590), opt(b.pdr_590));
    assert_eq!(opt(a.latency_ms_590), opt(b.latency_ms_590));
    assert_eq!(opt(a.network_death_s), opt(b.network_death_s));
    assert_eq!(opt(a.pdr_sd), opt(b.pdr_sd));
    assert_eq!(opt(a.latency_sd), opt(b.latency_sd));
    assert_eq!(a.replicas, b.replicas);
    for (s1, s2) in [(&a.alive, &b.alive), (&a.aen, &b.aen)] {
        assert_eq!(s1.len(), s2.len(), "series lengths differ");
        for (p, q) in s1.points().iter().zip(s2.points()) {
            assert_eq!(p.t_secs.to_bits(), q.t_secs.to_bits());
            assert_eq!(p.value.to_bits(), q.value.to_bits());
        }
    }
}

#[test]
fn panicking_scenario_quarantines_while_healthy_ones_average() {
    quiet_panics();
    let healthy = tiny(7, 12);
    let bomb = tiny(7, 13); // 13 hosts marks the bomb scenario
    let runner = |sc: &Scenario, o: RunOptions, p: Probe| {
        let r = run_scenario_probed(sc, o, p);
        if sc.n_hosts == 13 {
            panic!("bomb: injected failure at seed {}", sc.seed);
        }
        r
    };
    let sup = SupervisorConfig::default().with_max_retries(1);
    let report = sweep_supervised_with(&[healthy, bomb], 2, RunOptions::default(), &sup, &runner);

    // the healthy scenario averaged; the bomb scenario is fully quarantined
    assert_eq!(report.averaged.len(), 1);
    assert_eq!(report.averaged[0].scenario.n_hosts, 12);
    assert!(!report.averaged[0].is_degraded());
    assert_eq!(report.quarantined.len(), 2, "both bomb replicas quarantined");
    for q in &report.quarantined {
        assert_eq!(q.scenario.n_hosts, 13);
        // first try + one retry, each on its own recorded seed
        assert_eq!(q.failures.len(), 2);
        assert_ne!(q.failures[0].seed, q.failures[1].seed);
        for f in &q.failures {
            assert!(matches!(&f.kind, FailureKind::Panic(m) if m.contains("bomb")));
            // the probe survived the panic with real progress in it
            assert!(f.events_processed > 0, "probe lost progress: {f}");
            assert!(f.virtual_time_s > 0.0);
        }
    }
    // isolation did not distort the healthy average: bit-identical to a
    // plain unsupervised sweep of the same scenario
    let plain = sweep(&[healthy], 2);
    assert_bits_eq(&report.averaged[0], &plain[0]);
    let rendered = report.render();
    assert!(rendered.contains("QUARANTINED"), "{rendered}");
}

#[test]
fn flaky_point_recovers_on_rederived_retry_seed() {
    quiet_panics();
    let sc = tiny(11, 12);
    // detonate only on the replicas' identity seeds: every first attempt
    // fails, every retry (different seed) succeeds
    let identity: HashSet<u64> = (0..2).map(|k| replica_seed(sc.seed, k)).collect();
    let runner = move |job: &Scenario, o: RunOptions, p: Probe| {
        let r = run_scenario_probed(job, o, p);
        if identity.contains(&job.seed) {
            panic!("flaky: first-attempt failure");
        }
        r
    };
    let sup = SupervisorConfig::default().with_max_retries(2);
    let report = sweep_supervised_with(&[sc], 2, RunOptions::default(), &sup, &runner);
    assert!(report.quarantined.is_empty());
    assert_eq!(report.recovered, 2, "both replicas recovered via retry");
    assert_eq!(report.failures.len(), 2, "one recorded failure per replica");
    assert_eq!(report.averaged.len(), 1);
    assert_eq!(report.averaged[0].replicas, 2);
}

#[test]
fn runaway_replica_is_stopped_by_the_event_budget() {
    // a real run with a watchdog ceiling far below what the scenario
    // needs: the supervisor must terminate it (not hang) and quarantine
    // with the budget diagnostic
    let sc = tiny(3, 12);
    let limit = 500u64;
    let sup = SupervisorConfig::default()
        .with_max_retries(1)
        .with_event_budget(Some(limit));
    let report = sweep_supervised(&[sc], 1, RunOptions::default(), &sup);
    assert!(report.averaged.is_empty());
    assert_eq!(report.quarantined.len(), 1);
    let q = &report.quarantined[0];
    assert_eq!(q.failures.len(), 2);
    for f in &q.failures {
        assert!(matches!(f.kind, FailureKind::Budget(_)), "unexpected: {f}");
        // the budget check runs after each dispatch, so the run stops on
        // the first event past the ceiling
        assert!(f.events_processed <= limit + 1, "{}", f.events_processed);
        assert!(f.events_processed > 0);
    }
}

#[test]
fn partial_replica_failure_degrades_the_average() {
    quiet_panics();
    let sc = tiny(19, 12);
    // exactly replica 1 detonates, on every attempt — retries re-derive
    // from the identity seed, so the kill set covers those seeds too
    let bad_seed = replica_seed(sc.seed, 1);
    let mut bad: HashSet<u64> = HashSet::new();
    bad.insert(bad_seed);
    for a in 1..=2u64 {
        bad.insert(derive_seed(bad_seed, "retry", a));
    }
    let runner = move |job: &Scenario, o: RunOptions, p: Probe| {
        let r = run_scenario_probed(job, o, p);
        if bad.contains(&job.seed) {
            panic!("replica 1 always fails");
        }
        r
    };
    let sup = SupervisorConfig::default().with_max_retries(2);
    let report = sweep_supervised_with(&[sc], 3, RunOptions::default(), &sup, &runner);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].replica, 1);
    let avg = &report.averaged[0];
    assert_eq!(avg.replicas, 2, "two of three replicas contributed");
    assert_eq!(avg.replicas_requested, 3);
    assert!(avg.is_degraded());
    // the degraded average equals averaging the two survivors directly
    let survivors: Vec<_> = report.replicas.clone();
    assert_eq!(survivors.len(), 2);
    let direct = average_results_degraded(&survivors, 3).unwrap();
    assert_bits_eq(avg, &direct);
}

#[test]
fn journal_resume_reproduces_fresh_results_bit_for_bit() {
    let scenarios = [tiny(23, 12), tiny(29, 14)];
    let replicas = 2;
    let opts = RunOptions::digest(); // digests on, so resume must preserve them
    let sup = SupervisorConfig::default();

    // ground truth: one uninterrupted, unjournaled supervised sweep
    let fresh = sweep_supervised(&scenarios, replicas, opts, &sup);
    assert_eq!(fresh.completed, 4);
    assert!(fresh.replicas.iter().all(|r| r.digest.is_some()));

    // simulate a sweep killed partway: only the first scenario's replicas
    // made it into the journal
    let dir = artifacts_dir().join("resume_test");
    let _ = std::fs::remove_dir_all(&dir);
    let journal = dir.join("journal.jsonl");
    let sup_j = sup.clone().with_journal(journal.clone());
    let partial = sweep_supervised(&scenarios[..1], replicas, opts, &sup_j);
    assert_eq!(partial.completed, 2);
    assert!(journal.exists());

    // sabotage the tail the way a kill mid-append would: a truncated line
    let body = std::fs::read_to_string(&journal).unwrap();
    let truncated = &body[..body.len() - 40];
    std::fs::write(&journal, format!("{truncated}\n")).unwrap();

    // resume the full grid: scenario 0 replica 0 loads from the journal,
    // the truncated record and all of scenario 1 rerun
    let resumed = sweep_supervised(&scenarios, replicas, opts, &sup_j);
    assert_eq!(resumed.from_journal, 1, "one intact journal record reused");
    assert_eq!(resumed.malformed_journal_lines, 1, "truncated line detected");
    assert_eq!(resumed.completed, 3, "the rest ran fresh");
    assert!(resumed.quarantined.is_empty());

    // bit-identical to the uninterrupted run: averages...
    assert_eq!(resumed.averaged.len(), fresh.averaged.len());
    for (a, b) in resumed.averaged.iter().zip(&fresh.averaged) {
        assert_bits_eq(a, b);
    }
    // ...and per-replica trace digests
    let digests = |r: &ecgrid_suite::runner::SweepReport| {
        r.replicas
            .iter()
            .map(|x| (x.scenario.n_hosts, x.replica, x.digest))
            .collect::<Vec<_>>()
    };
    assert_eq!(digests(&resumed), digests(&fresh));

    // a second resume does no work at all and still matches
    let warm = sweep_supervised(&scenarios, replicas, opts, &sup_j);
    assert_eq!(warm.completed, 0);
    assert_eq!(warm.from_journal, 4);
    for (a, b) in warm.averaged.iter().zip(&fresh.averaged) {
        assert_bits_eq(a, b);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_point_preserves_every_attempted_seed_for_replay() {
    quiet_panics();
    let sc = tiny(31, 12);
    let runner = |job: &Scenario, o: RunOptions, p: Probe| {
        let _ = run_scenario_probed(job, o, p);
        panic!("always: seed {}", job.seed)
    };
    let sup = SupervisorConfig::default().with_max_retries(2);
    let out = run_point(&runner, &sc, RunOptions::default(), &sup);
    assert!(out.result.is_none());
    assert_eq!(out.failures.len(), 3);
    // the recorded seeds are exactly the attempted ones, in order
    assert_eq!(out.failures[0].seed, sc.seed);
    for (i, f) in out.failures.iter().enumerate() {
        assert_eq!(f.attempt, i as u32);
        assert!(
            matches!(&f.kind, FailureKind::Panic(m) if m.contains(&f.seed.to_string())),
            "failure message should carry the seed that ran: {f}"
        );
    }
}

/// CI runs this test by name: a small supervised sweep with an injected
/// panic AND an active chaos fault plan.  It asserts the quarantine
/// report and leaves `target/supervision/{journal.jsonl,quarantine_report.txt}`
/// for artifact upload.
#[test]
fn ci_supervised_sweep_with_chaos_faults_and_injected_panic() {
    quiet_panics();
    let healthy = tiny(41, 12);
    let bomb = tiny(41, 13);
    let faults = FaultPlan::parse("loss=0.05,churn=0.005").expect("chaos plan");
    let opts = RunOptions::default().with_faults(faults);
    let runner = |sc: &Scenario, o: RunOptions, p: Probe| {
        let r = run_scenario_probed(sc, o, p);
        if sc.n_hosts == 13 {
            panic!("bomb: injected failure under chaos plan");
        }
        r
    };
    let dir = artifacts_dir();
    let journal = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal);
    let sup = SupervisorConfig::default()
        .with_max_retries(1)
        .with_journal(journal.clone());
    let report = sweep_supervised_with(&[healthy, bomb], 2, opts, &sup, &runner);

    let rendered = report.render();
    write_atomic(&dir.join("quarantine_report.txt"), rendered.as_bytes()).unwrap();

    assert_eq!(report.quarantined.len(), 2, "{rendered}");
    assert_eq!(report.averaged.len(), 1, "healthy chaos scenario averaged");
    assert!(rendered.contains("QUARANTINED"));
    assert!(journal.exists(), "journal checkpoint written");
    // only successful replicas are journaled — never the quarantined ones
    let body = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(body.lines().count(), 2, "{body}");
}

#[test]
fn journal_survives_garbage_bytes_and_dedupes_duplicate_entries() {
    let sc = tiny(43, 12);
    let opts = RunOptions::digest();
    let dir = artifacts_dir().join("journal_hardening");
    let _ = std::fs::remove_dir_all(&dir);
    let journal = dir.join("journal.jsonl");
    let sup = SupervisorConfig::default().with_journal(journal.clone());

    let fresh = sweep_supervised(&[sc], 2, opts, &sup);
    assert_eq!(fresh.completed, 2);

    // corrupt the file the way a disk hiccup would: raw invalid-UTF-8
    // garbage splattered between the records, plus a full duplicate of
    // the first record (as if a resumed sweep double-appended)
    let body = std::fs::read(&journal).unwrap();
    let text = String::from_utf8(body.clone()).unwrap();
    let first_line = text.lines().next().unwrap().to_string();
    let mut sabotaged: Vec<u8> = Vec::new();
    sabotaged.extend_from_slice(&[0xff, 0xfe, 0x00, 0x80, b'\n']);
    sabotaged.extend_from_slice(&body);
    sabotaged.extend_from_slice(b"\xc3\x28 not json either\n");
    sabotaged.extend_from_slice(first_line.as_bytes());
    sabotaged.extend_from_slice(b"\n");
    std::fs::write(&journal, &sabotaged).unwrap();

    // the resume still reuses both real records, reruns nothing, counts
    // the two garbage lines and the duplicate as anomalies, and matches
    // the fresh run bit for bit
    let resumed = sweep_supervised(&[sc], 2, opts, &sup);
    assert_eq!(resumed.completed, 0, "no rerun despite the corruption");
    assert_eq!(resumed.from_journal, 2);
    assert_eq!(
        resumed.malformed_journal_lines, 3,
        "two garbage lines + one duplicate entry"
    );
    assert!(resumed.quarantined.is_empty());
    for (a, b) in resumed.averaged.iter().zip(&fresh.averaged) {
        assert_bits_eq(a, b);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wall_budget_terminates_a_pathological_replica_and_quarantines_it() {
    // a scenario far too big to finish in 30ms of wall time: the wall
    // watchdog must stop it promptly (not pin the worker) and quarantine
    // with the wall-specific diagnostic; no retry, because wall trips are
    // non-deterministic and must never burn the retry budget
    let sc = tiny(47, 40);
    let big = Scenario {
        duration_secs: 10_000.0,
        ..sc
    };
    let sup = SupervisorConfig::default()
        .with_max_retries(0)
        .with_wall_budget_ms(Some(30));
    let start = std::time::Instant::now();
    let report = sweep_supervised(&[big], 1, RunOptions::default(), &sup);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "watchdog failed to stop the run promptly"
    );
    assert!(report.averaged.is_empty());
    assert_eq!(report.quarantined.len(), 1);
    let f = &report.quarantined[0].failures[0];
    match &f.kind {
        FailureKind::Budget(b) => {
            let msg = b.to_string();
            assert!(msg.contains("wall"), "wrong exit reason: {msg}");
        }
        other => panic!("expected a budget failure, got {other:?}"),
    }
    assert!(f.events_processed > 0, "the run made real progress first");
}
