//! Chaos invariant suite: every protocol, driven through the seeded
//! fault-injection layer (`crates/fault`), must keep the PR-1 trace
//! invariants — plus the fault-specific ones the hardening added:
//!
//! * every `PageRetry` chain terminates inside the configured budget,
//! * no grid stays gateway-less past the handoff grace window while it is
//!   demonstrably populated,
//! * delivery rate degrades monotonically (within tolerance) as frame
//!   loss rises, and
//! * under the headline adversarial plan (`loss=0.2, churn=0.01,
//!   page_fail=0.1`) ECGRID still delivers at least half of the CBR
//!   packets sent before the paper's 590 s horizon.
//!
//! Replica count for the averaged tests comes from `ECGRID_REPLICAS`
//! (default 1; CI runs 2).  When an invariant check fails, the offending
//! run's full JSONL trace is left under `target/chaos/` for post-mortem
//! (CI uploads it as an artifact); traces of passing runs are removed.

mod common;

use common::{check_invariants, Chaos};
use ecgrid_suite::ecgrid::{Ecgrid, EcgridConfig};
use ecgrid_suite::manet::trace::TraceMode;
use ecgrid_suite::manet::{
    EventKind, FaultPlan, FlowSet, HostSetup, NodeId, Point2, SimDuration, SimTime, World, WorldConfig,
};
use ecgrid_suite::mobility::MobilityTrace;
use ecgrid_suite::runner::{
    run_replicas, run_scenario_with, ProtocolKind, RunOptions, Scenario, ScenarioResult,
};
use ecgrid_suite::trace::Recorder;
use ecgrid_suite::traffic::{CbrFlow, FlowId};
use std::path::PathBuf;

fn tiny(protocol: ProtocolKind) -> Scenario {
    Scenario {
        protocol,
        n_hosts: 40,
        max_speed: 2.0,
        pause_secs: 0.0,
        n_flows: 4,
        flow_rate_pps: 1.0,
        duration_secs: 45.0,
        seed: 3,
        model1_endpoints: 4,
    }
}

fn replicas() -> usize {
    std::env::var("ECGRID_REPLICAS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

fn run_traced(sc: &Scenario, plan: FaultPlan) -> ScenarioResult {
    let opts = RunOptions {
        trace: Some(TraceMode::Full),
        ..RunOptions::default()
    }
    .with_faults(plan);
    run_scenario_with(sc, opts)
}

fn chaos_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/chaos")
}

/// Export the run's trace before checking it; the file survives only if
/// the check panics (CI picks `target/chaos/*.jsonl` up as an artifact).
fn check_rec_with_postmortem(label: &str, protocol: &str, rec: &Recorder) {
    let dir = chaos_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{label}.jsonl"));
    let f = std::fs::File::create(&path).unwrap();
    let mut w = std::io::BufWriter::new(f);
    rec.write_jsonl(protocol, &mut w).unwrap();
    drop(w);
    check_invariants(label, rec.events(), Chaos::Expected);
    let _ = std::fs::remove_file(&path);
}

fn check_with_postmortem(label: &str, r: &ScenarioResult) {
    let rec = r.recorder.as_ref().expect("full trace kept");
    check_rec_with_postmortem(label, r.scenario.protocol.name(), rec);
}

#[test]
fn chaos_invariants_hold_across_the_fault_plan_grid() {
    for p in ProtocolKind::ALL {
        for &loss in &[0.0, 0.2] {
            for &churn in &[0.0, 0.02] {
                for &page_fail in &[0.0, 0.2] {
                    if loss == 0.0 && churn == 0.0 && page_fail == 0.0 {
                        continue; // PR-1's fault-free case, covered elsewhere
                    }
                    let plan = FaultPlan {
                        loss,
                        churn_rate: churn,
                        rejoin_secs: 3.0,
                        page_fail,
                        ..FaultPlan::none()
                    };
                    let label = format!(
                        "{}_loss{}_churn{}_page{}",
                        p.name().to_lowercase(),
                        loss,
                        churn,
                        page_fail
                    );
                    let r = run_traced(&tiny(p), plan);
                    // the plan must actually have engaged
                    if loss > 0.0 {
                        assert!(r.stats.frames_lost_fault > 0, "{label}: no frames lost");
                    }
                    if churn > 0.0 {
                        assert!(r.stats.crashes > 0, "{label}: no crashes");
                    }
                    check_with_postmortem(&label, &r);
                }
            }
        }
    }
}

#[test]
fn chaos_invariants_hold_across_the_scenario_file_matrix() {
    // The heterogeneous scenario families (mixed radio ranges, group
    // mobility, bursty and many-to-one traffic, role-restricted flows)
    // under an adversarial plan: the same trace invariants must hold,
    // and the injections must demonstrably engage.  ECGRID everywhere;
    // GAF on the endpoint-rich families to cover the Model-1 path.
    let plan = FaultPlan {
        loss: 0.15,
        churn_rate: 0.02,
        rejoin_secs: 3.0,
        page_fail: 0.1,
        ..FaultPlan::none()
    };
    let examples_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    for stem in ["dense_square", "manhattan", "convoy", "hotspot", "many_to_one"] {
        let text = std::fs::read_to_string(examples_dir.join(format!("{stem}.scn"))).unwrap();
        let spec =
            ecgrid_suite::scenario::parse(&text).unwrap_or_else(|e| panic!("examples/{stem}.scn: {e}"));
        let mut protocols = vec![ProtocolKind::Ecgrid];
        if matches!(stem, "hotspot" | "many_to_one") {
            protocols.push(ProtocolKind::Gaf);
        }
        for p in protocols {
            let opts = RunOptions {
                trace: Some(TraceMode::Full),
                ..RunOptions::default()
            }
            .with_faults(plan);
            let r = ecgrid_suite::runner::run_spec(&spec, p, opts);
            let label = format!("scn_{stem}_{}", p.name().to_lowercase());
            assert!(r.stats.frames_lost_fault > 0, "{label}: loss never engaged");
            assert!(r.ledger.sent_count() > 0, "{label}: no traffic flowed");
            let rec = r.recorder.as_ref().expect("full trace kept");
            check_rec_with_postmortem(&label, p.name(), rec);
            // a faulted scenario run is still a pure function of its file
            let again = ecgrid_suite::runner::run_spec(&spec, p, opts);
            assert_eq!(
                r.recorder.as_ref().map(|rc| rc.digest()),
                again.recorder.as_ref().map(|rc| rc.digest()),
                "{label}: faulted scenario replay drifted"
            );
        }
    }
}

#[test]
fn delivery_degrades_monotonically_with_rising_loss() {
    // Averaged over ECGRID_REPLICAS seeds per point; a small tolerance
    // absorbs the residual replica noise.  The CSMA MAC retries each frame
    // several times, so independent loss below ~0.3 is almost fully masked
    // (PDR can even tick *up* a couple of packets) — the curve probes the
    // region where retries can no longer compensate.
    const TOLERANCE: f64 = 0.05;
    let n = replicas();
    let sc = tiny(ProtocolKind::Ecgrid);
    let mut curve = Vec::new();
    for &loss in &[0.0, 0.4, 0.7] {
        let plan = FaultPlan {
            loss,
            ..FaultPlan::none()
        };
        let opts = RunOptions::default().with_faults(plan);
        let runs = run_replicas(&sc, n, opts, true);
        let mean = runs.iter().filter_map(|r| r.pdr).sum::<f64>() / runs.len() as f64;
        curve.push((loss, mean));
    }
    for pair in curve.windows(2) {
        let ((l0, p0), (l1, p1)) = (pair[0], pair[1]);
        assert!(
            p1 <= p0 + TOLERANCE,
            "delivery did not degrade with loss: pdr({l0})={p0:.3} -> pdr({l1})={p1:.3} \
             (replicas={n}, tolerance={TOLERANCE})"
        );
    }
    // and the far end of the curve must actually hurt
    assert!(
        curve[2].1 < curve[0].1,
        "loss=0.7 should cost delivery: {curve:?}"
    );
}

#[test]
fn page_retry_chains_terminate_under_page_loss() {
    // Heavy RAS page loss: the gateway must re-page with backoff and give
    // up inside the budget — never spin the page→flush→fail loop forever.
    //
    // A fault-layer page loss only happens when a page actually reaches a
    // sleeping addressee in RAS range, which mobile scenarios rarely set
    // up.  So: stationary three-grid row, CBR flow from gateway 0 to the
    // sleeping member 7 two grids over, with the packet interval (2 s)
    // longer than the sleep quiet delay (1.5 s) — the destination drops
    // back to sleep between packets and every packet starts a fresh page
    // chain for the loss to chew on.
    let plan = FaultPlan {
        page_fail: 0.6,
        ..FaultPlan::none()
    };
    let horizon = SimTime::from_secs(120);
    let still = |x: f64, y: f64| HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), horizon));
    let hosts = vec![
        // grid (0,0): node 0 at center, 1 and 2 off-center
        still(50.0, 50.0),
        still(20.0, 30.0),
        still(80.0, 70.0),
        // grid (2,0): node 3 at center, 4 off-center
        still(250.0, 50.0),
        still(220.0, 20.0),
        // grid (4,0): node 5 at center, 6 and 7 off-center
        still(450.0, 50.0),
        still(430.0, 20.0),
        still(470.0, 80.0),
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(7),
        packet_bytes: 512,
        interval: SimDuration::from_millis(2000),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(85),
        burst: None,
    }]);
    let cfg = WorldConfig::paper_default(7).with_faults(plan);
    let mut w = World::new(cfg, hosts, flows, |id| Ecgrid::new(EcgridConfig::default(), id));
    w.enable_trace(TraceMode::Full);
    w.run_until(SimTime::from_secs(90));

    let stats = *w.stats();
    assert!(stats.pages_lost_fault > 0, "no pages were lost — plan inert");
    let rec = w.take_recorder().expect("trace enabled");
    let budget = EcgridConfig::default().max_page_attempts;
    let mut retries = 0u64;
    for ev in rec.events() {
        if let EventKind::PageRetry { attempt, .. } = ev.kind {
            retries += 1;
            assert!(
                attempt >= 1 && attempt < budget,
                "page-retry attempt {attempt} outside [1, {budget})"
            );
        }
    }
    assert!(
        retries > 0,
        "60% page loss over {} pages produced no retries",
        stats.pages_sent
    );
    // losing 60% of pages must not black-hole the flow: the retry chains
    // still land most packets eventually
    let pdr = w.ledger().delivery_rate().expect("packets were sent");
    assert!(
        pdr >= 0.5,
        "page retries failed to recover delivery: pdr {pdr:.3}"
    );
    check_rec_with_postmortem("ecgrid_pagefail06", "ECGRID", &rec);
}

#[test]
fn handoff_timeouts_fire_and_resolve_under_heavy_loss() {
    // The handoff-grace backstop: a departing gateway pages its grid, then
    // the RETIRE that should appoint a successor is lost on the air.  The
    // paged member's grace timer must catch this (GatewayHandoffTimeout)
    // and re-raise election — the shared checker asserts every timeout
    // resolves within the window.  Fast mobility makes gateways cross
    // cells often; loss=0.55 eats enough RETIREs for the backstop to fire.
    let plan = FaultPlan {
        loss: 0.55,
        ..FaultPlan::none()
    };
    let sc = Scenario {
        protocol: ProtocolKind::Ecgrid,
        n_hosts: 40,
        max_speed: 5.0,
        pause_secs: 0.0,
        n_flows: 6,
        flow_rate_pps: 1.0,
        duration_secs: 80.0,
        seed: 3,
        model1_endpoints: 4,
    };
    let r = run_traced(&sc, plan);
    let rec = r.recorder.as_ref().expect("full trace kept");
    let timeouts = rec
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GatewayHandoffTimeout { .. }))
        .count();
    assert!(timeouts > 0, "the handoff-grace backstop never fired");
    check_with_postmortem("ecgrid_handoff_loss055", &r);
}

#[test]
fn gateway_crashes_recover_by_reelection() {
    // Aggressive churn: gateways crash mid-tenure without a RETIRE on the
    // air.  The watchdog / handoff-grace / orphan machinery must re-elect
    // rather than black-hole — the shared checker verifies every handoff
    // timeout resolves; here we also require the machinery engaged at all.
    let plan = FaultPlan {
        churn_rate: 0.05,
        rejoin_secs: 4.0,
        ..FaultPlan::none()
    };
    let sc = tiny(ProtocolKind::Ecgrid);
    let r = run_traced(&sc, plan);
    assert!(
        r.stats.crashes >= 5,
        "churn too weak: {} crashes",
        r.stats.crashes
    );
    assert!(r.stats.rejoins >= 1, "nobody rejoined");
    let rec = r.recorder.as_ref().expect("full trace kept");
    let elects = rec
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GatewayElect { .. }))
        .count();
    assert!(
        elects > r.stats.crashes as usize / 4,
        "{} crashes but only {elects} elections — grids are not recovering",
        r.stats.crashes
    );
    check_with_postmortem("ecgrid_churn005", &r);
}

#[test]
fn ecgrid_meets_the_acceptance_bar_under_the_headline_plan() {
    // The PR's acceptance criterion: loss=0.2, churn=0.01, page_fail=0.1
    // and ECGRID still delivers ≥ 50% of the CBR packets sent before
    // 590 s.  (The whole run ends well before 590 s, so pdr_590 covers
    // every sent packet.)
    let plan = FaultPlan::parse("loss=0.2,churn=0.01,page_fail=0.1").unwrap();
    let sc = Scenario {
        protocol: ProtocolKind::Ecgrid,
        n_hosts: 40,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 3,
        flow_rate_pps: 1.0,
        duration_secs: 120.0,
        seed: 42,
        model1_endpoints: 4,
    };
    let r = run_traced(&sc, plan);
    assert!(r.stats.frames_lost_fault > 0 && r.stats.crashes > 0, "plan inert");
    let pdr = r.pdr_590.expect("packets were sent");
    assert!(
        pdr >= 0.5,
        "ECGRID delivered only {:.1}% under the acceptance plan",
        100.0 * pdr
    );
    check_with_postmortem("ecgrid_acceptance", &r);
}
