//! Shared helpers for the integration suites: the stateful trace-invariant
//! checker, used in [`Chaos::Forbidden`] mode by `trace_invariants` (a
//! fault-free run must not even contain fault events) and in
//! [`Chaos::Expected`] mode by `chaos_invariants` (faults are part of the
//! scenario, and the checker knows how they may legally bend the rules).
#![allow(dead_code)]

use ecgrid_suite::manet::{EventKind, NodeId};
use ecgrid_suite::trace::{Event, FaultKind};
use ecgrid_suite::{energy, geo, sim_engine};
use energy::{EnergyLevel, RadioMode};
use geo::GridCoord;
use sim_engine::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet};

/// How the checker treats events only a fault plan can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Chaos {
    /// Fault-free run: any `FaultInjected` event is itself a violation,
    /// and battery levels must cascade one class at a time.
    Forbidden,
    /// Faulted run: crashes forcibly close gateway tenures, sudden drains
    /// may skip a battery class (but never go up), and page retries must
    /// stay within the configured attempt budget.
    Expected,
}

/// How long after a `GatewayHandoffTimeout` the grid must have resolved
/// (re-elected, or the reporter crashed/left) before we call it
/// black-holed.  Generous: election window + a couple of HELLO rounds.
const HANDOFF_RESOLVE_WINDOW_SECS: u64 = 5;

/// Replay `events` through every invariant checker; panic with context on
/// the first violation.
///
/// Invariants (both modes):
/// * timestamps never go backwards,
/// * every delivered (and forwarded) packet was sent first,
/// * no host transmits while its radio is asleep (or off, or dead),
/// * gateway elect / retire strictly alternate per (node, cell) tenure,
/// * battery level classes only move downward and a node dies at most once.
///
/// Extra invariants in [`Chaos::Expected`] mode:
/// * every `PageRetry` chain terminates: attempts stay strictly below the
///   ECGRID page budget and grow one at a time per (gateway, target),
/// * no grid stays gateway-less past the grace window: every
///   `GatewayHandoffTimeout` is followed within
///   [`HANDOFF_RESOLVE_WINDOW_SECS`] by a re-election in that cell, unless the
///   cell demonstrably was not orphaned (another live tenure) or the
///   reporter itself crashed or moved away (or the trace ends first).
pub fn check_invariants(tag: &str, events: &[Event], chaos: Chaos) {
    let max_page_attempts = ecgrid_suite::ecgrid::EcgridConfig::default().max_page_attempts;
    let mut last_t = SimTime::ZERO;
    let mut sent: HashSet<(u32, u64)> = HashSet::new();
    let mut mode: HashMap<NodeId, RadioMode> = HashMap::new();
    let mut gw: HashMap<NodeId, GridCoord> = HashMap::new();
    let mut level: HashMap<NodeId, EnergyLevel> = HashMap::new();
    let mut dead: HashSet<NodeId> = HashSet::new();
    let mut retry_streak: HashMap<(NodeId, NodeId), u32> = HashMap::new();
    // (index, time, reporter, cell, cell had another live tenure at report)
    let mut handoffs: Vec<(usize, SimTime, NodeId, GridCoord, bool)> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let at = || format!("{tag}: event #{i} at {:?}: {:?}", ev.t, ev.kind);
        assert!(ev.t >= last_t, "{}: time went backwards (last {last_t:?})", at());
        last_t = ev.t;

        match ev.kind {
            EventKind::PacketSent { flow, seq, .. } => {
                assert!(sent.insert((flow, seq)), "{}: duplicate send", at());
            }
            EventKind::PacketForwarded { flow, seq, .. } => {
                assert!(sent.contains(&(flow, seq)), "{}: forwarded before sent", at());
            }
            EventKind::PacketDelivered { flow, seq, .. } => {
                assert!(sent.contains(&(flow, seq)), "{}: delivered before sent", at());
            }
            EventKind::MacTx { node, .. } => {
                let m = mode.get(&node).copied().unwrap_or(RadioMode::Idle);
                assert!(
                    m != RadioMode::Sleep && m != RadioMode::Off,
                    "{}: transmission while the radio is {m:?}",
                    at()
                );
                assert!(!dead.contains(&node), "{}: transmission after death", at());
            }
            EventKind::RadioMode { node, from, to } => {
                let prev = mode.insert(node, to).unwrap_or(RadioMode::Idle);
                assert_eq!(prev, from, "{}: mode transition out of nowhere", at());
            }
            EventKind::GatewayElect { node, cell } => {
                assert_eq!(
                    gw.insert(node, cell),
                    None,
                    "{}: elected while already holding a gateway tenure",
                    at()
                );
            }
            EventKind::GatewayRetire { node, cell } => {
                assert_eq!(
                    gw.remove(&node),
                    Some(cell),
                    "{}: retire does not close the matching elect",
                    at()
                );
            }
            EventKind::BatteryLevel { node, from, to } => {
                let prev = level.insert(node, to).unwrap_or(EnergyLevel::Upper);
                assert_eq!(prev, from, "{}: level transition out of nowhere", at());
                match chaos {
                    Chaos::Forbidden => assert_eq!(
                        from.next_down(),
                        Some(to),
                        "{}: battery classes must cascade downward one step at a time",
                        at()
                    ),
                    // a sudden fault drain may skip a class — but the
                    // cascade still only ever points down
                    Chaos::Expected => {
                        assert!(to < from, "{}: battery class went up", at())
                    }
                }
            }
            EventKind::NodeDeath { node } => {
                assert!(dead.insert(node), "{}: node died twice", at());
            }
            EventKind::FaultInjected { node, fault } => {
                assert_eq!(
                    chaos,
                    Chaos::Expected,
                    "{}: fault event in a fault-free run",
                    at()
                );
                if fault == FaultKind::Crash {
                    // a crash truncates the tenure without a RETIRE on the
                    // air; the reboot starts from a clean slate
                    gw.remove(&node);
                }
            }
            EventKind::PageRetry {
                node,
                target,
                attempt,
            } => {
                assert_eq!(chaos, Chaos::Expected, "{}: page retry in a fault-free run", at());
                assert!(
                    (1..max_page_attempts).contains(&attempt),
                    "{}: page-retry attempt outside [1, {max_page_attempts})",
                    at()
                );
                let streak = retry_streak.entry((node, target)).or_insert(0);
                assert!(
                    attempt > *streak || attempt == 1,
                    "{}: retry chain went backwards without restarting at 1 (last {})",
                    at(),
                    *streak
                );
                *streak = attempt;
            }
            EventKind::GatewayHandoffTimeout { node, cell } => {
                assert_eq!(
                    chaos,
                    Chaos::Expected,
                    "{}: handoff timeout in a fault-free run",
                    at()
                );
                let occupied = gw.iter().any(|(n, c)| *n != node && *c == cell);
                handoffs.push((i, ev.t, node, cell, occupied));
            }
            _ => {}
        }
    }

    // Second pass: every handoff timeout must resolve within the window.
    for (i, t, node, cell, occupied) in handoffs {
        if occupied {
            continue; // the cell still had a live gateway — spurious timeout
        }
        let deadline = t + SimDuration::from_secs(HANDOFF_RESOLVE_WINDOW_SECS);
        if last_t < deadline {
            continue; // the trace ends inside the window: nothing provable
        }
        let resolved = events[i + 1..]
            .iter()
            .take_while(|ev| ev.t <= deadline)
            .any(|ev| match ev.kind {
                EventKind::GatewayElect { cell: c, .. } => c == cell,
                EventKind::FaultInjected { node: n, fault } => {
                    n == node && (fault == FaultKind::Crash || fault == FaultKind::Rejoin)
                }
                EventKind::CellChange { node: n, .. } => n == node,
                EventKind::NodeDeath { node: n } => n == node,
                _ => false,
            });
        assert!(
            resolved,
            "{tag}: grid {cell} still gateway-less {HANDOFF_RESOLVE_WINDOW_SECS} s after \
             the handoff timeout {node} reported at {t:?} (event #{i})"
        );
    }
}
