//! Golden-trace regression harness for the scenario-file families.
//!
//! Every committed example under `examples/*.scn` is run under ECGRID,
//! GRID and GAF and its trace digest pinned by a fixture at
//! `tests/golden/scn_<example>_<protocol>.digest` — so behavioural drift
//! anywhere in the scenario pipeline (parser → group builders → mobility
//! models → heterogeneous world → per-group metrics) fails a diff here,
//! exactly as `tests/golden_trace.rs` does for the classic homogeneous
//! scenario.  The same runs also prove the determinism contract on the
//! new families: repeat, scheduler-backend, shard-count and thread-count
//! invariance of the digest.
//!
//! To regenerate the fixtures after a deliberate behaviour change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test scenario_golden
//! ```

use ecgrid_suite::manet::Backend;
use ecgrid_suite::runner::{run_spec, ProtocolKind, RunOptions};
use ecgrid_suite::scenario::{self, ScenarioSpec};
use ecgrid_suite::trace::TraceDigest;
use std::path::PathBuf;

/// Every committed scenario example, by file stem.  Keep in sync with
/// `examples/*.scn` — `every_committed_example_has_a_fixture` fails if a
/// new example lands without joining this matrix.
const EXAMPLES: [&str; 5] = ["dense_square", "manhattan", "convoy", "hotspot", "many_to_one"];

const PROTOCOLS: [ProtocolKind; 3] = [ProtocolKind::Ecgrid, ProtocolKind::Grid, ProtocolKind::Gaf];

fn example_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join(format!("{stem}.scn"))
}

fn load(stem: &str) -> ScenarioSpec {
    let path = example_path(stem);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    scenario::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

fn fixture_path(stem: &str, p: ProtocolKind) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("scn_{stem}_{}.digest", p.name().to_lowercase()))
}

fn digest_of(spec: &ScenarioSpec, p: ProtocolKind, opts: RunOptions) -> TraceDigest {
    run_spec(spec, p, opts).trace_digest.expect("tracing was enabled")
}

fn check_fixture(label: &str, path: &PathBuf, got: TraceDigest, mismatches: &mut Vec<String>) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, format!("{got}\n")).unwrap();
        return;
    }
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let want = TraceDigest::parse(&text).unwrap_or_else(|| panic!("unparseable fixture {}", path.display()));
    if got != want {
        mismatches.push(format!("{label}: fixture {want}, run produced {got}"));
    }
}

#[test]
fn every_committed_example_has_a_fixture() {
    // the acceptance bar: no .scn lands without a pinned digest
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut stems: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|x| x.to_str()) == Some("scn"))
                .then(|| p.file_stem().unwrap().to_str().unwrap().to_string())
        })
        .collect();
    stems.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        stems, listed,
        "examples/*.scn and the EXAMPLES matrix diverged — add the new \
         example here so it gets golden fixtures"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return; // digests_match_the_scenario_fixtures writes them this run
    }
    for stem in EXAMPLES {
        for p in PROTOCOLS {
            assert!(
                fixture_path(stem, p).is_file(),
                "example {stem} has no {} fixture; run with UPDATE_GOLDEN=1",
                p.name()
            );
        }
    }
}

#[test]
fn digests_match_the_scenario_fixtures() {
    let mut mismatches = Vec::new();
    for stem in EXAMPLES {
        let spec = load(stem);
        for p in PROTOCOLS {
            let got = digest_of(&spec, p, RunOptions::digest());
            check_fixture(
                &format!("{stem}/{}", p.name()),
                &fixture_path(stem, p),
                got,
                &mut mismatches,
            );
        }
    }
    assert!(
        mismatches.is_empty(),
        "scenario golden drift (deliberate change? rerun with UPDATE_GOLDEN=1):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn repeated_runs_of_every_family_agree() {
    for stem in EXAMPLES {
        let spec = load(stem);
        let a = digest_of(&spec, ProtocolKind::Ecgrid, RunOptions::digest());
        let b = digest_of(&spec, ProtocolKind::Ecgrid, RunOptions::digest());
        assert_eq!(a, b, "{stem}: same file must replay bit-identically");
        assert_ne!(a.0, 0, "{stem}: a non-empty run has a non-trivial digest");
    }
}

#[test]
fn scenario_digests_are_backend_invariant() {
    for stem in EXAMPLES {
        let spec = load(stem);
        for p in PROTOCOLS {
            let heap = digest_of(&spec, p, RunOptions::digest().with_backend(Backend::Heap));
            let cal = digest_of(&spec, p, RunOptions::digest().with_backend(Backend::Calendar));
            assert_eq!(
                heap,
                cal,
                "{stem}/{}: backends must schedule identically",
                p.name()
            );
        }
    }
}

#[test]
fn scenario_digests_are_shard_and_thread_invariant() {
    // The heterogeneous families on the sharded engine: mixed per-group
    // radio ranges (convoy), group-shared mobility references, bursty and
    // many-to-one traffic must all replay bit-identically at every
    // (shards, threads) — the digest-equivalence contract of DESIGN.md
    // §12/§14 extended to scenario fleets.
    for stem in EXAMPLES {
        let spec = load(stem);
        let serial = digest_of(&spec, ProtocolKind::Ecgrid, RunOptions::digest());
        for (k, t) in [(2, 1), (4, 1), (4, 4)] {
            let par = digest_of(
                &spec,
                ProtocolKind::Ecgrid,
                RunOptions::digest().with_parallel_world(k).with_threads(t),
            );
            assert_eq!(serial, par, "{stem}: K={k} T={t} diverged from serial");
        }
    }
}

#[test]
fn distinct_families_produce_distinct_digests() {
    // the families genuinely differ — no two examples collapse onto the
    // same event stream (which would mean a mobility/traffic knob is dead)
    let mut seen: Vec<(String, TraceDigest)> = Vec::new();
    for stem in EXAMPLES {
        let spec = load(stem);
        let d = digest_of(&spec, ProtocolKind::Ecgrid, RunOptions::digest());
        for (other, prev) in &seen {
            assert_ne!(d, *prev, "{stem} and {other} digested identically");
        }
        seen.push((stem.to_string(), d));
    }
}
