//! Digest-proving equivalence of the SoA host-state layout and the
//! adaptive gather fallback.
//!
//! PR 6 restructured `World`'s per-host state from a Vec-of-structs into
//! parallel arrays and made grid-mode receiver discovery *adaptive*: below
//! an occupancy threshold the query falls back to a brute linear scan (the
//! bucket walk only wins once buckets hold enough members).  Both changes
//! are pure reorganizations of *where* the same values live and *which*
//! equivalent path reads them — so every one of them must be invisible in
//! the trace.  These tests prove it the strong way, by digest:
//!
//! * the committed `tests/golden/*.digest` fixtures (which predate the SoA
//!   layout) still reproduce bit-for-bit, in Brute and Grid modes, under
//!   every fallback policy;
//! * the chaos-plan faulted fixtures reproduce the same way, so crash
//!   handling and death pruning agree too;
//! * a run whose live population *crosses* the auto threshold mid-run
//!   (battery-drain deaths shrink it from above the crossover to below)
//!   digests identically with the fallback forced on, forced off, and
//!   adaptive — the per-query path switch never shows.

use ecgrid_suite::manet::{FaultPlan, GatherFallback, NeighborIndex};
use ecgrid_suite::radio::auto_gather_threshold;
use ecgrid_suite::runner::{run_scenario_with, ProtocolKind, RunOptions, Scenario};
use ecgrid_suite::trace::TraceDigest;
use std::path::PathBuf;

/// The golden scenario (keep in sync with `tests/golden_trace.rs`).
fn golden(protocol: ProtocolKind) -> Scenario {
    Scenario {
        protocol,
        n_hosts: 30,
        max_speed: 1.0,
        pause_secs: 0.0,
        n_flows: 3,
        flow_rate_pps: 1.0,
        duration_secs: 40.0,
        seed: 11,
        model1_endpoints: 4,
    }
}

const PROTOCOLS: [ProtocolKind; 3] = [ProtocolKind::Ecgrid, ProtocolKind::Grid, ProtocolKind::Gaf];
const FALLBACKS: [GatherFallback; 3] = [GatherFallback::Auto, GatherFallback::On, GatherFallback::Off];

/// The chaos plan pinned by the faulted golden fixtures.
fn golden_plan() -> FaultPlan {
    FaultPlan::parse("loss=0.15,churn=0.02,rejoin=3,page_fail=0.1").unwrap()
}

fn read_fixture(name: &str) -> TraceDigest {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.digest"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    TraceDigest::parse(&text).unwrap_or_else(|| panic!("unparseable fixture {}", path.display()))
}

#[test]
fn soa_world_reproduces_the_golden_fixtures_under_every_fallback() {
    // The fixtures predate both the SoA layout and the fallback knob, so
    // matching them proves the whole restructuring changed nothing against
    // history.  Brute mode ignores the knob (one run suffices); grid mode
    // must match under all three policies.
    for p in PROTOCOLS {
        let want = read_fixture(&p.name().to_lowercase());
        let brute = run_scenario_with(
            &golden(p),
            RunOptions::digest().with_neighbor_index(NeighborIndex::Brute),
        );
        assert_eq!(
            brute.trace_digest,
            Some(want),
            "{p:?}: brute-mode SoA run drifted from the golden fixture"
        );
        for fb in FALLBACKS {
            let grid = run_scenario_with(
                &golden(p),
                RunOptions::digest()
                    .with_neighbor_index(NeighborIndex::Grid)
                    .with_gather_fallback(fb),
            );
            assert_eq!(
                grid.trace_digest,
                Some(want),
                "{p:?}: grid-mode SoA run with fallback {} drifted from the golden fixture",
                fb.name()
            );
        }
    }
}

#[test]
fn fallback_policies_agree_under_the_chaos_plan() {
    // Churn (crash + rejoin) and loss stress the paths where a fallback
    // policy could drift: crashed hosts stay *in* the index (they are
    // frozen, not dead), so both query paths must keep returning them;
    // pinning against the faulted fixtures keeps this from becoming a
    // vacuous "equal but both wrong" pass.
    for p in PROTOCOLS {
        let want = read_fixture(&format!("{}_faulted", p.name().to_lowercase()));
        for fb in FALLBACKS {
            let r = run_scenario_with(
                &golden(p),
                RunOptions::digest()
                    .with_faults(golden_plan())
                    .with_neighbor_index(NeighborIndex::Grid)
                    .with_gather_fallback(fb),
            );
            assert_eq!(
                r.trace_digest,
                Some(want),
                "{p:?}: faulted fixture drift with fallback {}",
                fb.name()
            );
            assert!(
                r.stats.crashes > 0 && r.stats.frames_lost_fault > 0,
                "{p:?}: the chaos plan must actually engage"
            );
        }
    }
}

#[test]
fn adaptive_fallback_is_invisible_across_a_mid_run_threshold_crossing() {
    // Start above the auto crossover and drain batteries hard enough that
    // deaths pull the live population below it mid-run: the adaptive
    // policy answers early queries from the buckets and late queries from
    // the linear scan, and the digest must not notice the switch.  The
    // paper grid (d = 100 m, range 250 m) gives reach 4, so the crossover
    // sits at 3·(2·4+1)² = 243 hosts.
    let threshold = auto_gather_threshold(4);
    assert_eq!(threshold, 243, "crossover moved; retune this scenario");
    let n_hosts = 260;
    let sc = Scenario {
        protocol: ProtocolKind::Ecgrid,
        n_hosts,
        max_speed: 2.0,
        pause_secs: 0.0,
        n_flows: 5,
        flow_rate_pps: 1.0,
        duration_secs: 25.0,
        seed: 17,
        model1_endpoints: 4,
    };
    // heavy drains force battery deaths (which prune the index and shrink
    // the occupancy count); churn rides along so crash/rejoin freezing is
    // exercised on both sides of the crossing
    let plan = FaultPlan::parse("drain=0.2,drain_frac=0.95,churn=0.02,rejoin=2").unwrap();
    let base = RunOptions::digest()
        .with_faults(plan)
        .with_neighbor_index(NeighborIndex::Grid);
    let runs: Vec<_> = FALLBACKS
        .iter()
        .map(|&fb| (fb, run_scenario_with(&sc, base.with_gather_fallback(fb))))
        .collect();
    let (_, auto_run) = &runs[0];
    for (fb, r) in &runs[1..] {
        assert_eq!(
            r.trace_digest,
            auto_run.trace_digest,
            "fallback {} diverged from adaptive across the threshold crossing",
            fb.name()
        );
        assert_eq!(&r.stats, &auto_run.stats, "fallback {}", fb.name());
    }
    // prove the crossing actually happened: enough battery deaths that the
    // live population ended below the crossover it started above
    let deaths = auto_run.stats.deaths as usize;
    assert!(
        n_hosts > threshold && n_hosts - deaths < threshold,
        "population never crossed the crossover: {} hosts - {} deaths vs threshold {}",
        n_hosts,
        deaths,
        threshold
    );
}

/// Heterogeneous per-host radio ranges through the SoA receiver-gather
/// paths: the grid-bucket index (sized from the fleet-max range), the
/// brute scan, and every gather-fallback policy must produce identical
/// candidate verdicts when transmissions carry their own shorter discs.
#[test]
fn heterogeneous_ranges_agree_across_gather_paths() {
    const MIXED_RANGES: &str = r#"
[scenario]
name = "mixed-ranges-soa"
duration_s = 30
seed = 29

[[group]]
name = "short"
count = 16
mobility = "walk"
max_speed = 4.0
range_m = 110

[[group]]
name = "long"
count = 12
mobility = "waypoint"
max_speed = 2.0
range_m = 250

[traffic]
flows = 4
rate_pps = 1.0
"#;
    let spec = ecgrid_suite::scenario::parse(MIXED_RANGES).unwrap();
    let grid = ecgrid_suite::runner::run_spec(
        &spec,
        ProtocolKind::Ecgrid,
        RunOptions::digest().with_neighbor_index(NeighborIndex::Grid),
    );
    let want = grid.trace_digest.expect("tracing was enabled");
    let brute = ecgrid_suite::runner::run_spec(
        &spec,
        ProtocolKind::Ecgrid,
        RunOptions::digest().with_neighbor_index(NeighborIndex::Brute),
    );
    assert_eq!(
        brute.trace_digest,
        Some(want),
        "brute scan diverged on mixed ranges"
    );
    for fb in FALLBACKS {
        let r = ecgrid_suite::runner::run_spec(
            &spec,
            ProtocolKind::Ecgrid,
            RunOptions::digest()
                .with_neighbor_index(NeighborIndex::Grid)
                .with_gather_fallback(fb),
        );
        assert_eq!(
            r.trace_digest,
            Some(want),
            "fallback {} diverged on mixed ranges",
            fb.name()
        );
        assert_eq!(r.stats, grid.stats, "fallback {}", fb.name());
    }
}
