//! Property tests for the spatial neighbor index: for arbitrary
//! placements, motions, and ranges, a bucket-index query filtered by exact
//! distance equals the brute-force `within_range` scan — including points
//! exactly on bucket boundaries and pairs at distance == range (the disc
//! is inclusive).

use ecgrid_suite::geo::{GridMap, Point2};
use ecgrid_suite::radio::SpatialIndex;
use proptest::prelude::*;

/// Brute-force reference: ids of all points within `range` of `q`.
fn brute_within(points: &[Point2], q: Point2, range: f64) -> Vec<u32> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| q.within_range(**p, range))
        .map(|(i, _)| i as u32)
        .collect()
}

/// Index-side query: 3×3 gather around `q`'s bucket, then the same exact
/// distance filter the simulator applies.
fn indexed_within(idx: &SpatialIndex, points: &[Point2], q: Point2, range: f64) -> Vec<u32> {
    let mut gathered = Vec::new();
    idx.query_point_sorted_into(q, &mut gathered);
    gathered.retain(|&i| q.within_range(points[i as usize], range));
    gathered
}

proptest! {
    /// Range-sized buckets: the 3×3 gather plus exact filter equals the
    /// full scan for random placements and query points.
    #[test]
    fn bucketed_range_query_equals_brute_force(
        coords in proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..80),
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
        range in 50.0..400.0f64,
    ) {
        let points: Vec<Point2> = coords.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let mut idx = SpatialIndex::new(1000.0, 1000.0, range);
        for (i, p) in points.iter().enumerate() {
            idx.insert_at(i as u32, *p);
        }
        let q = Point2::new(qx, qy);
        prop_assert_eq!(indexed_within(&idx, &points, q, range), brute_within(&points, q, range));
    }

    /// ...and still after every point moves (incremental maintenance, not
    /// rebuild, is what the simulator exercises).
    #[test]
    fn query_survives_incremental_moves(
        coords in proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..50),
        moves in proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..50),
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
    ) {
        let range = 250.0;
        let mut points: Vec<Point2> = coords.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let mut idx = SpatialIndex::new(1000.0, 1000.0, range);
        for (i, p) in points.iter().enumerate() {
            idx.insert_at(i as u32, *p);
        }
        for (k, &(x, y)) in moves.iter().enumerate() {
            let i = k % points.len();
            points[i] = Point2::new(x, y);
            idx.move_to_point(i as u32, points[i]);
        }
        let q = Point2::new(qx, qy);
        prop_assert_eq!(indexed_within(&idx, &points, q, range), brute_within(&points, q, range));
    }

    /// Cell-keyed deployment (the world's): buckets are the paper's 100 m
    /// grid cells and the reach is the Chebyshev cell radius the radio can
    /// span.  The gather must (a) reproduce the brute Chebyshev-filter
    /// contract exactly and (b) be a superset of everyone physically in
    /// radio range.
    #[test]
    fn cell_keyed_gather_matches_contract_and_covers_range(
        coords in proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..80),
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
    ) {
        let grid = GridMap::paper_default();
        let range = 250.0;
        let reach = (range / grid.cell_side()).ceil() as i32 + 1;
        let points: Vec<Point2> = coords.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let cells: Vec<_> = points.iter().map(|&p| grid.cell_of(p)).collect();
        let mut idx = SpatialIndex::with_buckets(grid.cells_x(), grid.cells_y(), grid.cell_side());
        for (i, c) in cells.iter().enumerate() {
            idx.insert(i as u32, c.x, c.y);
        }
        let q = Point2::new(qx, qy);
        let qc = grid.cell_of(q);
        let mut got = Vec::new();
        idx.gather_sorted_into(qc.x, qc.y, reach, &mut got);
        // (a) identical to the brute scan over maintained cells
        let want: Vec<u32> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.chebyshev(qc) <= reach)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(&got, &want);
        // (b) superset of the true in-range set
        for (i, p) in points.iter().enumerate() {
            if q.within_range(*p, range) {
                prop_assert!(
                    got.contains(&(i as u32)),
                    "in-range point {:?} missing from the cell gather", p
                );
            }
        }
    }
}

#[test]
fn boundary_sitters_and_exact_range_are_included() {
    // Nodes exactly on bucket boundaries and a pair at distance == range:
    // the disc is inclusive (within_range uses <=), and the index must not
    // lose either case.
    let range = 250.0;
    let mut idx = SpatialIndex::new(1000.0, 1000.0, range);
    let q = Point2::new(250.0, 250.0); // exactly on a bucket corner
    let points = [
        Point2::new(0.0, 250.0),   // distance exactly == range, on an edge
        Point2::new(500.0, 250.0), // distance exactly == range, other side
        Point2::new(250.0, 0.0),   // exactly == range, below
        Point2::new(250.0, 500.0), // exactly == range, above
        Point2::new(250.0, 250.0), // co-located with the query point
        Point2::new(500.0, 500.0), // on a corner, within range? (353.5 > 250: no)
        Point2::new(250.0, 500.1), // just past the range
    ];
    for (i, p) in points.iter().enumerate() {
        idx.insert_at(i as u32, *p);
    }
    let got = indexed_within(&idx, &points, q, range);
    assert_eq!(got, vec![0, 1, 2, 3, 4]);
    assert_eq!(got, brute_within(&points, q, range));
}

#[test]
fn far_edge_clamp_does_not_separate_close_neighbors() {
    // A point exactly at the field edge clamps into the last bucket; a
    // neighbor just inside must still see it (the regression the clamp
    // proof in DESIGN.md §10 covers).
    let range = 250.0;
    let mut idx = SpatialIndex::new(1000.0, 1000.0, range);
    let points = [Point2::new(1000.0, 1000.0), Point2::new(999.0, 999.0)];
    for (i, p) in points.iter().enumerate() {
        idx.insert_at(i as u32, *p);
    }
    for &q in &points {
        assert_eq!(indexed_within(&idx, &points, q, range), vec![0, 1]);
    }
}
