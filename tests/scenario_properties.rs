//! Property-based tests (proptest) on the scenario-file parser.
//!
//! The parser's contract, exercised over randomly generated specs:
//!
//! * **Roundtrip** — `parse(spec.to_text()) == spec` for every valid
//!   spec: the canonical emitter loses nothing the parser reads, which is
//!   also what lets the sweep service hash scenario jobs by re-emitted
//!   text (`serve::spec_config_hash`).
//! * **Located diagnostics** — an unknown key, an out-of-range value, or
//!   a garbage line injected anywhere into a valid file is rejected with
//!   the exact 1-based line of the offending token, never a parse that
//!   silently drops it.
//! * **Bounds** — count, battery_var, block_m and friends reject values
//!   outside their documented ranges.

use ecgrid_suite::scenario::{
    parse, GroupSpec, MobilitySpec, Role, ScenarioSpec, TrafficPattern, TrafficSpec,
};
use proptest::prelude::*;

type GroupDraw = ((u8, usize, u8), (f64, f64, f64), (f64, f64, f64), f64);
type TrafficDraw = (u8, usize, f64, usize, f64, (f64, f64));

/// Build a valid `GroupSpec` from drawn scalars.  `force_peer` pins the
/// role (group 0 stays flow-eligible so nonzero-flow specs validate).
fn build_group(i: usize, draw: &GroupDraw, field_min: f64, force_peer: bool) -> GroupSpec {
    let ((mob_idx, count, role_idx), (var, range, gps), (ms, p, a), batt) = *draw;
    let role = if force_peer {
        Role::Peer
    } else {
        match role_idx % 5 {
            0 => Role::Relay,
            1 => Role::Source,
            2 => Role::Sink,
            3 => Role::Peer,
            _ => Role::Endpoint,
        }
    };
    let battery_j = if role == Role::Endpoint || batt < 0.15 {
        None // endpoints are unmetered by rule; others may draw `inf`
    } else {
        Some(100.0 + 900.0 * batt)
    };
    let mobility = match mob_idx % 7 {
        0 => MobilitySpec::Stationary,
        1 => MobilitySpec::Waypoint {
            max_speed: ms,
            pause_s: p,
        },
        2 => MobilitySpec::Walk {
            max_speed: ms,
            epoch_s: p + 0.5,
        },
        3 => MobilitySpec::GaussMarkov {
            mean_speed: ms,
            alpha: a,
            epoch_s: p + 0.5,
        },
        4 => MobilitySpec::Manhattan {
            max_speed: ms,
            pause_s: p,
            block_m: field_min * (0.1 + 0.4 * a),
        },
        5 => MobilitySpec::Convoy {
            max_speed: ms,
            pause_s: p,
            group_radius_m: 10.0 + 100.0 * a,
        },
        _ => MobilitySpec::Hotspot {
            max_speed: ms,
            hotspots: 1 + (count % 8) as u32,
            dwell_s: p + 1.0,
        },
    };
    GroupSpec {
        name: format!("g{i}"),
        count: if force_peer { count.max(2) } else { count },
        battery_j,
        battery_var: var,
        range_m: range,
        gps_sigma_m: gps,
        role,
        mobility,
    }
}

fn build_spec(
    seed: u64,
    field: (f64, f64, f64),
    duration: f64,
    group_draws: &[GroupDraw],
    traffic: &TrafficDraw,
) -> ScenarioSpec {
    let (field_w, field_h, cell_side) = field;
    let field_min = field_w.min(field_h);
    let (pat_idx, flows, rate, bytes, start, (on_s, off_s)) = *traffic;
    let groups: Vec<GroupSpec> = group_draws
        .iter()
        .enumerate()
        .map(|(i, d)| build_group(i, d, field_min, i == 0 && flows > 0))
        .collect();
    let pattern = match pat_idx % 3 {
        0 => TrafficPattern::Cbr,
        1 => TrafficPattern::Bursty { on_s, off_s },
        _ => TrafficPattern::ManyToOne,
    };
    ScenarioSpec {
        name: "prop".into(),
        field_w,
        field_h,
        cell_side,
        duration_s: duration,
        seed,
        groups,
        traffic: TrafficSpec {
            pattern,
            flows,
            rate_pps: rate,
            packet_bytes: bytes as u32,
            start_s: start,
        },
    }
}

proptest! {
    /// parse(to_text()) is the identity on valid specs — every field of
    /// every mobility model, role, battery (finite and `inf`), and
    /// traffic pattern survives the canonical emit.
    #[test]
    fn parse_emit_parse_is_identity(
        seed in 0u64..1_000_000_000,
        field in (200.0..1500.0f64, 200.0..1500.0f64, 50.0..200.0f64),
        duration in 10.0..100.0f64,
        group_draws in proptest::collection::vec(
            ((0u8..7, 1usize..40, 0u8..5), (0.0..1.0f64, 50.0..400.0f64, 0.0..20.0f64),
             (0.1..20.0f64, 0.0..30.0f64, 0.0..1.0f64), 0.0..1.0f64),
            1..4),
        traffic in (0u8..3, 0usize..6, 0.1..4.0f64, 64usize..1024, 0.0..5.0f64,
                    (0.5..10.0f64, 0.5..10.0f64)),
    ) {
        let spec = build_spec(seed, field, duration, &group_draws, &traffic);
        let text = spec.to_text();
        let parsed = parse(&text)
            .map_err(|e| TestCaseError::fail(format!("emitted text failed to parse: {e}\n{text}")))?;
        prop_assert_eq!(&parsed, &spec, "roundtrip drifted");
        // and the emit itself is a fixed point
        prop_assert_eq!(parsed.to_text(), text);
    }

    /// An unknown key injected at any line inside any section is rejected
    /// with that exact line and the key's name in the diagnostic.
    #[test]
    fn unknown_keys_are_rejected_at_their_line(
        seed in 0u64..1_000_000_000,
        group_draws in proptest::collection::vec(
            ((0u8..7, 1usize..40, 0u8..5), (0.0..1.0f64, 50.0..400.0f64, 0.0..20.0f64),
             (0.1..20.0f64, 0.0..30.0f64, 0.0..1.0f64), 0.0..1.0f64),
            1..4),
        pick in 0.0..1.0f64,
    ) {
        let spec = build_spec(
            seed,
            (1000.0, 1000.0, 100.0),
            40.0,
            &group_draws,
            &(0, 2, 1.0, 256, 2.0, (4.0, 6.0)),
        );
        let text = spec.to_text();
        let lines: Vec<&str> = text.lines().collect();
        // insert after any line but the leading [scenario] header, so the
        // key always lands inside some section
        let at = 1 + ((pick * (lines.len() - 1) as f64) as usize).min(lines.len() - 2);
        let mut mutated: Vec<&str> = Vec::with_capacity(lines.len() + 1);
        mutated.extend_from_slice(&lines[..at]);
        mutated.push("mystery_knob = 1");
        mutated.extend_from_slice(&lines[at..]);
        let err = parse(&mutated.join("\n"))
            .expect_err("an unknown key must never parse");
        prop_assert!(
            err.msg.contains("mystery_knob"),
            "diagnostic names the key: {err}"
        );
        prop_assert_eq!(
            err.line as usize,
            at + 1,
            "diagnostic points at the injected line: {}", err
        );
    }

    /// A syntactically garbage line is rejected at its own line number.
    #[test]
    fn garbage_lines_are_located(
        group_draws in proptest::collection::vec(
            ((0u8..7, 1usize..40, 0u8..5), (0.0..1.0f64, 50.0..400.0f64, 0.0..20.0f64),
             (0.1..20.0f64, 0.0..30.0f64, 0.0..1.0f64), 0.0..1.0f64),
            1..4),
        pick in 0.0..1.0f64,
        garbage_idx in 0u8..4,
    ) {
        let spec = build_spec(
            7,
            (1000.0, 1000.0, 100.0),
            40.0,
            &group_draws,
            &(0, 0, 1.0, 256, 2.0, (4.0, 6.0)),
        );
        let text = spec.to_text();
        let lines: Vec<&str> = text.lines().collect();
        let at = 1 + ((pick * (lines.len() - 1) as f64) as usize).min(lines.len() - 2);
        let garbage = match garbage_idx {
            0 => "!!!",
            1 => "count",            // key with no `=`
            2 => "= 5",              // value with no key
            _ => "[scenario",        // unterminated header
        };
        let mut mutated: Vec<&str> = Vec::with_capacity(lines.len() + 1);
        mutated.extend_from_slice(&lines[..at]);
        mutated.push(garbage);
        mutated.extend_from_slice(&lines[at..]);
        let err = parse(&mutated.join("\n")).expect_err("garbage must never parse");
        prop_assert_eq!(
            err.line as usize,
            at + 1,
            "diagnostic points at the garbage line {:?}: {}", garbage, err
        );
    }

    /// Out-of-range values on bounded keys are rejected at their line,
    /// with the key named in the diagnostic.
    #[test]
    fn bounds_violations_are_rejected_at_their_line(
        group_draws in proptest::collection::vec(
            ((0u8..7, 1usize..40, 0u8..5), (0.0..1.0f64, 50.0..400.0f64, 0.0..20.0f64),
             (0.1..20.0f64, 0.0..30.0f64, 0.0..1.0f64), 0.0..1.0f64),
            1..4),
        which in 0u8..4,
    ) {
        let spec = build_spec(
            5,
            (1000.0, 1000.0, 100.0),
            40.0,
            &group_draws,
            &(0, 0, 1.0, 256, 2.0, (4.0, 6.0)),
        );
        let text = spec.to_text();
        let (needle, replacement) = match which {
            0 => ("count = ", "count = 0"),
            1 => ("battery_var = ", "battery_var = 1.5"),
            2 => ("range_m = ", "range_m = -1"),
            _ => ("gps_sigma_m = ", "gps_sigma_m = 1e9"),
        };
        let lines: Vec<&str> = text.lines().collect();
        let at = lines
            .iter()
            .position(|l| l.starts_with(needle))
            .expect("to_text always emits the key");
        let mutated: Vec<&str> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| if i == at { replacement } else { *l })
            .collect();
        let err = parse(&mutated.join("\n")).expect_err("bounds must reject");
        let key = needle.trim_end_matches(" = ");
        prop_assert!(err.msg.contains(key), "diagnostic names `{}`: {}", key, err);
        prop_assert_eq!(err.line as usize, at + 1, "located: {}", err);
    }
}
