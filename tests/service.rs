//! Chaos-client acceptance suite for the resident sweep service
//! (DESIGN.md §13): real `sweepd` semantics — a [`Server`] over the real
//! [`EcgridJobHandler`] — attacked the ways production clients fail.
//!
//! * a client killed mid-stream must leave the server healthy and the
//!   job running to completion;
//! * submissions past the admission bound are shed with a retry hint,
//!   never queued unboundedly, never hung;
//! * a graceful drain mid-sweep followed by a restart must resume the
//!   interrupted job from its journal checkpoint and reproduce the
//!   uninterrupted averaged results bit for bit;
//! * a subscriber too slow to keep up loses frames (counted in its
//!   `bye`) — but never stalls the simulation or perturbs its digest.
//!
//! Timing discipline: the tiny scenarios here complete in milliseconds,
//! faster than a TCP subscription can attach.  Tests that must observe a
//! job *while it runs* therefore use a single-worker server and park a
//! larger "filler" job in front of the target, subscribing while the
//! target is still queued — deterministic, no sleeps against the race.

use ecgrid_suite::runner::supervisor::SupervisorConfig;
use ecgrid_suite::runner::{EcgridJobHandler, RunOptions};
use ecgrid_suite::service::proto::{FilterSpec, JobSpec, Request};
use ecgrid_suite::service::{json, Client, ClientConfig, DoneInfo, Server, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Milliseconds of wall in a debug build, yet thousands of trace frames —
/// plenty to stress a bounded subscriber buffer.
fn tiny_spec(seed: u64, replicas: u64) -> JobSpec {
    JobSpec {
        n_hosts: 12,
        duration_secs: 15.0,
        n_flows: 2,
        model1_endpoints: 2,
        seed,
        replicas,
        ..JobSpec::default()
    }
}

/// A job big enough to hold a single worker busy while a test attaches a
/// subscription to the job queued behind it.
fn filler_spec() -> JobSpec {
    JobSpec {
        n_hosts: 50,
        duration_secs: 600.0,
        n_flows: 2,
        model1_endpoints: 2,
        seed: 77,
        replicas: 1,
        ..JobSpec::default()
    }
}

fn state_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from("target/service_test").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(dir: &str, cfg: ServiceConfig) -> Server {
    let handler = Arc::new(EcgridJobHandler::new(
        RunOptions::default(),
        SupervisorConfig::default(),
    ));
    Server::start(
        cfg.with_addr("127.0.0.1:0").with_state_dir(state_dir(dir)),
        handler,
    )
    .expect("server start")
}

fn connect(server: &Server) -> Client {
    let cfg = ClientConfig::default()
        .with_addr(server.local_addr().to_string())
        .with_backoff(5, 100, 1);
    Client::connect(cfg).expect("client connect")
}

/// Raw subscription socket: sends the subscribe request and returns the
/// connected stream (reply and frames unread).
fn raw_subscribe(server: &Server, job: u64) -> TcpStream {
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    let sub = Request::Subscribe {
        job,
        filter: FilterSpec::default(),
    };
    writeln!(sock, "{}", sub.encode()).unwrap();
    sock
}

/// Poll job status until it reaches a terminal state.
fn await_terminal(client: &mut Client, job: u64, deadline: Duration) -> String {
    let start = Instant::now();
    loop {
        let st = client
            .request_idempotent(&Request::Status { job: Some(job) })
            .expect("status");
        let state = json::field(&st, "state").unwrap_or("?").to_string();
        if state != "queued" && state != "running" {
            return state;
        }
        assert!(start.elapsed() < deadline, "job {job} stuck in {state}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn killed_client_mid_stream_leaves_the_server_healthy() {
    let server = start_server("killed_client", ServiceConfig::default().with_workers(1));
    let mut client = connect(&server);
    client.submit_until_accepted(&filler_spec(), 0).expect("filler");
    let (job, _) = client.submit_until_accepted(&tiny_spec(3, 1), 0).expect("submit");

    // a raw subscriber that reads a few frames and then dies without so
    // much as a goodbye — the way a Ctrl-C'd terminal client does
    {
        let sock = raw_subscribe(&server, job);
        sock.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        for _ in 0..5 {
            line.clear();
            reader.read_line(&mut line).unwrap();
        }
        // dropped here, mid-stream
    }

    // the sim is unperturbed: the job completes and the server still
    // answers on fresh connections
    assert_eq!(await_terminal(&mut client, job, Duration::from_secs(120)), "done");
    let pong = client
        .request_idempotent(&Request::Ping)
        .expect("ping after kill");
    assert_eq!(json::field(&pong, "pong"), Some("sweepd"));
    let stats = client.request_idempotent(&Request::Stats).expect("stats");
    assert_eq!(json::u64_field(&stats, "completed"), Some(2));

    server.request_shutdown();
    server.wait();
}

#[test]
fn submissions_past_the_admission_bound_are_shed_not_queued() {
    // one worker, a queue of one: the third concurrent submission must
    // be shed with the configured hint, and the reply must be immediate
    let server = start_server(
        "shed",
        ServiceConfig::default()
            .with_workers(1)
            .with_capacity(1)
            .with_retry_after_ms(123),
    );
    let mut client = connect(&server);

    let (running, _) = client.submit_until_accepted(&filler_spec(), 0).expect("first");
    // wait until the worker picked it up, so the queue is empty again
    let start = Instant::now();
    loop {
        let st = client
            .request_idempotent(&Request::Status { job: Some(running) })
            .unwrap();
        if json::field(&st, "state") == Some("running") {
            break;
        }
        assert!(start.elapsed() < Duration::from_secs(30), "job never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    // fills the queue slot
    client.submit_until_accepted(&tiny_spec(6, 1), 0).expect("queued");

    // past the bound: shed, immediately, with the server's hint
    let t = Instant::now();
    match client.submit(&tiny_spec(7, 1)).expect("exchange") {
        ecgrid_suite::service::SubmitOutcome::Shed { retry_after_ms } => {
            assert_eq!(retry_after_ms, 123);
        }
        other => panic!("expected shed, got {other:?}"),
    }
    assert!(t.elapsed() < Duration::from_secs(5), "shed reply must not block");
    let stats = client.request_idempotent(&Request::Stats).unwrap();
    assert_eq!(json::u64_field(&stats, "shed"), Some(1));

    server.request_shutdown();
    server.wait();
}

fn digests_and_bits(info: &DoneInfo) -> (Vec<String>, Option<u64>, Option<u64>) {
    (
        info.digests.clone(),
        info.pdr.map(f64::to_bits),
        info.latency_ms.map(f64::to_bits),
    )
}

#[test]
fn drain_mid_sweep_then_restart_resumes_bit_for_bit() {
    let spec = tiny_spec(9, 3);

    // ground truth: the same job on an uninterrupted server
    let baseline = {
        let server = start_server("resume_baseline", ServiceConfig::default());
        let mut client = connect(&server);
        let (job, _) = client.submit_until_accepted(&spec, 0).expect("submit");
        let info = client
            .stream_job(job, &FilterSpec::default(), |_| {})
            .expect("stream");
        server.request_shutdown();
        server.wait();
        assert_eq!(info.completed, 3);
        info
    };

    // run 1: drain mid-sweep.  The filler keeps the single worker busy
    // while the subscription attaches to the queued target; the drain
    // fires on the target's first live event, i.e. during replica 0 —
    // the flag is only checked between replicas, so replica 0 still
    // finishes into the journal and replicas 1-2 are left to resume.
    let cfg = || {
        ServiceConfig::default()
            .with_workers(1)
            .with_state_dir("target/service_test/resume_drained")
    };
    let _ = std::fs::remove_dir_all("target/service_test/resume_drained");
    let interrupted_job;
    {
        let handler = Arc::new(EcgridJobHandler::new(
            RunOptions::default(),
            SupervisorConfig::default(),
        ));
        let server = Server::start(cfg().with_addr("127.0.0.1:0"), handler).unwrap();
        let mut client = connect(&server);
        client.submit_until_accepted(&filler_spec(), 0).expect("filler");
        let (job, _) = client.submit_until_accepted(&spec, 0).expect("submit");
        interrupted_job = job;
        let handle = server.handle();
        let info = client
            .stream_job(job, &FilterSpec::default(), |frame| {
                if json::field(frame, "stream") == Some("event") {
                    handle.request_shutdown();
                }
            })
            .expect("stream through drain");
        let summary = server.wait();
        assert_eq!(summary.submitted, 2);
        assert_eq!(info.state, Some(ecgrid_suite::service::JobState::Interrupted));
        assert!(info.completed >= 1, "replica 0 checkpointed before the drain");
        assert!(info.completed < 3, "the drain interrupted real work");
    }

    // run 2: a fresh process over the same state dir recovers the
    // interrupted job from its manifest and finishes it — journaled
    // replicas load, the rest run fresh, and the averaged result is
    // bit-identical to the uninterrupted baseline
    {
        let handler = Arc::new(EcgridJobHandler::new(
            RunOptions::default(),
            SupervisorConfig::default(),
        ));
        let server = Server::start(cfg().with_addr("127.0.0.1:0"), handler).unwrap();
        let mut client = connect(&server);
        let info = client
            .stream_job(interrupted_job, &FilterSpec::default(), |_| {})
            .expect("stream resumed");
        let summary = {
            server.request_shutdown();
            server.wait()
        };
        assert_eq!(summary.recovered, 1, "manifest rescan requeued the job");
        assert_eq!(info.completed, 3);
        assert!(info.from_journal >= 1, "checkpointed replicas were reused");
        assert!(info.from_journal < 3, "the drain left real work to resume");
        assert_eq!(digests_and_bits(&info), digests_and_bits(&baseline));
    }
}

#[test]
fn scenario_file_jobs_run_with_per_group_metrics_and_local_digest_parity() {
    // a small heterogeneous fleet: metered waypoint walkers sourcing
    // many-to-one traffic into an infinite-battery sink group
    const TEXT: &str = r#"
[scenario]
name = "svc-field"
duration_s = 15
seed = 21

[[group]]
name = "walkers"
count = 10
mobility = "waypoint"
max_speed = 1.0
role = "source"

[[group]]
name = "collectors"
count = 2
mobility = "stationary"
role = "endpoint"

[traffic]
pattern = "many_to_one"
flows = 2
rate_pps = 1.0
"#;
    let server = start_server("scenario_job", ServiceConfig::default());
    let mut client = connect(&server);
    let spec = JobSpec {
        scenario: ecgrid_suite::service::proto::scenario_hex_encode(TEXT),
        replicas: 2,
        ..JobSpec::default()
    };
    let (job, _) = client.submit_until_accepted(&spec, 0).expect("submit");
    let mut group_metrics: Vec<String> = Vec::new();
    let info = client
        .stream_job(job, &FilterSpec::default(), |frame| {
            if json::field(frame, "stream") == Some("metric") {
                if let Some(name) = json::field(frame, "name") {
                    if name.starts_with("group.") {
                        group_metrics.push(name.to_string());
                    }
                }
            }
        })
        .expect("stream");
    assert_eq!(info.state, Some(ecgrid_suite::service::JobState::Done));
    assert_eq!(info.completed, 2);
    assert_eq!(info.digests.len(), 2);

    // per-group labels flowed into the metric stream, for every replica
    for name in [
        "group.walkers.sent",
        "group.walkers.aen",
        "group.collectors.delivered",
        "group.collectors.alive_fraction",
    ] {
        assert_eq!(
            group_metrics.iter().filter(|n| *n == name).count(),
            2,
            "metric {name} once per replica: {group_metrics:?}"
        );
    }

    // replica digests match a local run of the same file: the service
    // path adds supervision and streaming, not new randomness
    let parsed = ecgrid_suite::scenario::parse(TEXT).expect("scenario parses");
    let opts = RunOptions::digest();
    for (k, digest) in info.digests.iter().enumerate() {
        let mut point = parsed.clone();
        point.seed = ecgrid_suite::runner::run::replica_seed(parsed.seed, k as u64);
        let local = ecgrid_suite::runner::run_spec(&point, ecgrid_suite::runner::ProtocolKind::Ecgrid, opts);
        assert_eq!(
            digest,
            &local.trace_digest.expect("local digest").to_string(),
            "replica {k} digest diverges from the local run"
        );
    }

    server.request_shutdown();
    server.wait();
}

#[test]
fn slow_subscriber_drops_frames_without_stalling_or_perturbing_the_sim() {
    // a subscriber buffer this small cannot absorb a replica's thousands
    // of trace frames: the hub must drop for this subscriber (and count
    // it) rather than apply backpressure to the simulation
    let server = start_server(
        "slow_sub",
        ServiceConfig::default().with_workers(1).with_subscriber_buffer(8),
    );
    let mut client = connect(&server);
    client.submit_until_accepted(&filler_spec(), 0).expect("filler");
    let (job, _) = client.submit_until_accepted(&tiny_spec(3, 1), 0).expect("submit");

    // subscribe while the target is queued, then read deliberately slowly
    // — far below the sim's frame rate, but steadily enough that the
    // connection stays alive
    let sock = raw_subscribe(&server, job);
    sock.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let slow_reader = std::thread::spawn(move || {
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        let mut n = 0u64;
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                return None;
            }
            if json::field(&line, "stream") == Some("bye") {
                return Some(line.trim().to_string());
            }
            n += 1;
            if n.is_multiple_of(64) {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    });

    assert_eq!(await_terminal(&mut client, job, Duration::from_secs(120)), "done");
    let bye = slow_reader
        .join()
        .expect("reader thread")
        .expect("slow subscriber still gets a bye");
    let dropped = json::u64_field(&bye, "dropped").unwrap_or(0);
    assert!(dropped > 0, "an 8-frame buffer cannot hold a full run: {bye}");

    // the sim's result was not perturbed by the struggling subscriber:
    // the digest in the terminal status matches a fresh journal replay
    let st = client
        .request_idempotent(&Request::Status { job: Some(job) })
        .unwrap();
    let digest = json::field(&st, "digests").unwrap_or("").to_string();
    assert!(!digest.is_empty());
    let replay = client
        .stream_job(job, &FilterSpec::default(), |_| {})
        .expect("replay");
    assert_eq!(
        replay.digests.join(";"),
        digest,
        "digest perturbed by slow subscriber"
    );

    server.request_shutdown();
    server.wait();
}
