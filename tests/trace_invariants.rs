//! Cross-protocol invariants checked over the recorded event stream.
//!
//! Every protocol runs the same scenario under a full trace; the resulting
//! event sequence is then replayed through a set of stateful checkers:
//!
//! * timestamps never go backwards,
//! * every delivered (and forwarded) packet was sent first,
//! * no host transmits while its radio is asleep (or off, or dead),
//! * gateway elect / retire strictly alternate per (node, cell) tenure,
//! * battery level classes only cascade downward (Upper → Boundary →
//!   Lower), a node dies at most once, and
//! * energy consumed never exceeds the battery's initial capacity.

mod common;

use common::{check_invariants as check_invariants_mode, Chaos};
use ecgrid_suite::manet::trace::TraceMode;
use ecgrid_suite::manet::{Battery, EventKind, HostSetup, NodeId, World, WorldConfig};
use ecgrid_suite::runner::{run_scenario_with, ProtocolKind, RunOptions, Scenario};
use ecgrid_suite::trace::Event;
use ecgrid_suite::{ecgrid, energy, mobility, sim_engine, traffic};
use energy::EnergyLevel;
use mobility::MobilityModel;
use sim_engine::{RngFactory, SimTime};
use std::collections::HashMap;

fn tiny(protocol: ProtocolKind) -> Scenario {
    Scenario {
        protocol,
        n_hosts: 40,
        max_speed: 2.0,
        pause_secs: 0.0,
        n_flows: 4,
        flow_rate_pps: 1.0,
        duration_secs: 60.0,
        seed: 3,
        model1_endpoints: 4,
    }
}

/// Replay `events` through every invariant checker (strict, fault-free
/// mode); panic with context on the first violation.  The checker itself
/// lives in `tests/common/` and is shared with the chaos suite.
fn check_invariants(tag: &str, events: &[Event]) {
    check_invariants_mode(tag, events, Chaos::Forbidden);
}

#[test]
fn every_protocol_satisfies_the_trace_invariants() {
    for p in ProtocolKind::ALL {
        let opts = RunOptions {
            trace: Some(TraceMode::Full),
            ..RunOptions::default()
        };
        let r = run_scenario_with(&tiny(p), opts);
        let rec = r.recorder.expect("full trace kept");
        assert!(rec.count() > 0, "{p:?}: the run recorded nothing");
        check_invariants(p.name(), rec.events());
    }
}

#[test]
fn gateway_tenures_alternate_and_close() {
    // Focused check on the control plane: per (node, cell), elect and
    // retire interleave strictly, and every tenure that ends was opened.
    for p in [ProtocolKind::Ecgrid, ProtocolKind::Grid, ProtocolKind::Gaf] {
        let opts = RunOptions {
            trace: Some(TraceMode::Full),
            ..RunOptions::default()
        };
        let r = run_scenario_with(&tiny(p), opts);
        let rec = r.recorder.expect("full trace kept");
        let mut elects = 0u64;
        let mut retires = 0u64;
        for ev in rec.events() {
            match ev.kind {
                EventKind::GatewayElect { .. } => elects += 1,
                EventKind::GatewayRetire { .. } => retires += 1,
                _ => {}
            }
        }
        assert!(elects > 0, "{p:?}: a grid protocol must elect gateways");
        assert!(
            retires <= elects,
            "{p:?}: {retires} retires but only {elects} elects"
        );
    }
}

/// Drive a small world on nearly-empty batteries until everyone dies, then
/// check the energy bookkeeping end to end: per-node consumption is capped
/// by the initial capacity, and the trace shows the full downward cascade
/// (Upper → Boundary → Lower → death) for each host.
#[test]
fn drained_batteries_cascade_and_never_overdraw() {
    let capacity = 2.0; // joules — idle draw empties this in ~2 minutes
    let cfg = WorldConfig::paper_default(99);
    let rngs = RngFactory::new(99);
    let model = mobility::RandomWaypoint::paper(1.0, 0.0);
    let horizon = SimTime::from_secs(400);
    let hosts: Vec<HostSetup> = (0..6)
        .map(|i| {
            let trace = model.build_trace(&mut rngs.stream("mobility", i), horizon);
            HostSetup {
                battery: Battery::with_capacity(capacity),
                ..HostSetup::paper(trace)
            }
        })
        .collect();
    let flows = traffic::FlowSet::new(Vec::new());
    let mut w = World::new(cfg, hosts, flows, |id| {
        ecgrid::Ecgrid::new(ecgrid::EcgridConfig::default(), id)
    });
    w.enable_trace(TraceMode::Full);
    w.run_until(SimTime::from_secs(300));

    for i in 0..w.node_count() {
        let id = NodeId(i as u32);
        assert!(!w.node_alive(id), "host {i} should have drained");
        let consumed = w.node_consumed_j(id);
        assert!(
            consumed <= capacity + 1e-9,
            "host {i} consumed {consumed} J from a {capacity} J battery"
        );
    }

    let rec = w.take_recorder().expect("trace enabled");
    check_invariants("drain", rec.events());
    let mut deaths = 0;
    let mut cascades: HashMap<NodeId, Vec<EnergyLevel>> = HashMap::new();
    for ev in rec.events() {
        match ev.kind {
            EventKind::NodeDeath { .. } => deaths += 1,
            EventKind::BatteryLevel { node, to, .. } => cascades.entry(node).or_default().push(to),
            _ => {}
        }
    }
    assert_eq!(deaths, 6, "every host dies exactly once");
    for (node, steps) in &cascades {
        assert_eq!(
            steps,
            &[EnergyLevel::Boundary, EnergyLevel::Lower],
            "host {node}: full downward cascade"
        );
    }
    assert_eq!(cascades.len(), 6);
}
