//! The paper's Fig. 2 scenario as an executable test: route discovery from
//! S in grid (1,1) to D in grid (5,3) with the search area confined to the
//! covering rectangle — and the gateway of grid (0,2) provably excluded.

use ecgrid_suite::ecgrid::{Ecgrid, EcgridConfig};
use ecgrid_suite::manet::{
    FlowSet, GridCoord, HostSetup, NodeId, Point2, SimDuration, SimTime, World, WorldConfig,
};
use ecgrid_suite::mobility::MobilityTrace;
use ecgrid_suite::traffic::{CbrFlow, FlowId};

const HORIZON: SimTime = SimTime(300_000_000_000);

fn host(x: f64, y: f64) -> HostSetup {
    HostSetup::paper(MobilityTrace::stationary(Point2::new(x, y), HORIZON))
}

/// Builds the Fig. 2 topology.  Index → paper name:
/// 0=S 1=A 2=B 3=C 4=D 5=E 6=F 7=I 8=J 9=K 10=L 11=H 12=G 13=M
fn fig2_world() -> World<Ecgrid> {
    let hosts = vec![
        host(150.0, 150.0), // S (1,1)
        host(150.0, 250.0), // A (1,2)
        host(250.0, 250.0), // B (2,2)
        host(250.0, 150.0), // C (2,1)
        host(550.0, 350.0), // D (5,3)
        host(350.0, 250.0), // E (3,2)
        host(450.0, 250.0), // F (4,2)
        host(50.0, 250.0),  // I (0,2)
        host(130.0, 120.0), // J (1,1)
        host(270.0, 280.0), // K (2,2)
        host(320.0, 220.0), // L (3,2)
        host(80.0, 230.0),  // H (0,2)
        host(580.0, 320.0), // G (5,3)
        host(480.0, 290.0), // M (4,2)
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(4),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(15),
        burst: None,
    }]);
    World::new(WorldConfig::paper_default(1), hosts, flows, |id| {
        let mut p = Ecgrid::new(EcgridConfig::default(), id);
        // Fig. 2 "supposes" S knows the destination's area — model the
        // location service with a seeded hint, so the very first search
        // is already confined to the covering rectangle
        if id == NodeId(0) {
            p.seed_location(NodeId(4), GridCoord::new(5, 3));
        }
        p
    })
}

#[test]
fn gateways_match_fig2_and_route_is_discovered() {
    let mut w = fig2_world();
    w.run_until(SimTime::from_secs(20));

    // §3.3: "hosts S, A, B, C, D, E, F, and I will be selected as the
    // gateway of grid (1,1), (1,2), (2,2), (2,1), (5,3), (3,2), (4,2),
    // and (0,2)" — they are the center-closest (all levels equal at t=0)
    let expected = [
        (0u32, GridCoord::new(1, 1)),
        (1, GridCoord::new(1, 2)),
        (2, GridCoord::new(2, 2)),
        (3, GridCoord::new(2, 1)),
        (4, GridCoord::new(5, 3)),
        (5, GridCoord::new(3, 2)),
        (6, GridCoord::new(4, 2)),
        (7, GridCoord::new(0, 2)),
    ];
    for (id, cell) in expected {
        assert!(
            w.protocol(NodeId(id)).is_gateway(),
            "host {id} must be gateway of {cell}"
        );
        assert_eq!(w.protocol(NodeId(id)).grid(), cell);
    }
    // "non-gateway hosts J, K, L, H, G and M can enter sleep mode"
    for id in [8u32, 9, 10, 11, 12, 13] {
        assert_eq!(
            w.protocol(NodeId(id)).role(),
            ecgrid_suite::ecgrid::Role::Sleeping,
            "host {id} must sleep"
        );
    }

    // all ten data packets reached D
    assert_eq!(w.ledger().sent_count(), 10);
    assert!(w.ledger().delivery_rate().unwrap() >= 0.9);

    // the search area excluded grid (0,2): I never forwarded an RREQ
    assert_eq!(
        w.protocol(NodeId(7)).stats.rreqs_forwarded,
        0,
        "I is outside the rectangle"
    );
    // while the corridor gateways did the forwarding
    let corridor: u64 = [2u32, 3, 5, 6]
        .iter()
        .map(|i| w.protocol(NodeId(*i)).stats.rreqs_forwarded)
        .sum();
    assert!(corridor >= 2, "rectangle gateways must relay the RREQ");
    // and D replied
    assert!(w.protocol(NodeId(4)).stats.rreps_sent >= 1);
}

#[test]
fn non_gateway_destination_is_woken_for_delivery() {
    // same topology, but the destination is G — a sleeping non-gateway in
    // D's grid (5,3): D must page G and forward the buffered data (§3.3)
    let hosts_world = fig2_world();
    drop(hosts_world);
    let hosts = vec![
        host(150.0, 150.0),
        host(150.0, 250.0),
        host(250.0, 250.0),
        host(250.0, 150.0),
        host(550.0, 350.0),
        host(350.0, 250.0),
        host(450.0, 250.0),
        host(50.0, 250.0),
        host(130.0, 120.0),
        host(270.0, 280.0),
        host(320.0, 220.0),
        host(80.0, 230.0),
        host(580.0, 320.0), // G — destination
        host(480.0, 290.0),
    ];
    let flows = FlowSet::new(vec![CbrFlow {
        id: FlowId(0),
        src: NodeId(0),
        dst: NodeId(12),
        packet_bytes: 512,
        interval: SimDuration::from_secs(1),
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(15),
        burst: None,
    }]);
    let mut w = World::new(WorldConfig::paper_default(2), hosts, flows, |id| {
        let mut p = Ecgrid::new(EcgridConfig::default(), id);
        if id == NodeId(0) {
            p.seed_location(NodeId(12), GridCoord::new(5, 3));
        }
        p
    });
    w.run_until(SimTime::from_secs(20));
    assert!(
        w.ledger().delivery_rate().unwrap() >= 0.9,
        "pdr {:?}",
        w.ledger().delivery_rate()
    );
    // D (gateway of G's grid) paged the sleeper at least once
    assert!(w.protocol(NodeId(4)).stats.pages_sent >= 1, "gateway must wake G");
    assert!(w.stats().pages_woken >= 1);
}
